"""Experiment runner: the full (design x benchmark) co-analysis grid.

Every table and figure in the paper's evaluation is a projection of one
grid of co-analysis runs (3 designs x 6 benchmarks).  This module runs
that grid once and caches results on disk, so the per-table benchmark
harnesses in ``benchmarks/`` can each render their artifact without
re-simulating.

Caching is content-addressed (:mod:`repro.store`): every grid entry is
keyed by the :func:`~repro.store.fingerprint.run_fingerprint` of its
configuration -- netlist structure, CSM config, assembled binary,
engine, frontier, budgets -- so entries self-invalidate the moment any
ingredient changes, with no version constant to bump.  ``run_one`` can
additionally memoize *segment results* through the same store
(``cache=``): a re-run of an identical configuration replays settled
segments instead of re-simulating them.
"""

from __future__ import annotations

import os
import pickle
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from ..coanalysis.engine import CoAnalysisEngine
from ..coanalysis.results import CoAnalysisResult
from ..coanalysis.trace import JsonlTraceSink, ProgressLine, Tracer
from ..csm.constraints import ConstraintSet, parse_constraints
from ..csm.manager import ConservativeStateManager
from ..csm.strategies import MergeStrategy, UberConservative
from ..store import ContentStore, RunFingerprint, SegmentResultCache, \
    run_fingerprint
from ..workloads import WORKLOAD_ORDER, WORKLOADS, build_target

DESIGN_ORDER = ["bm32", "omsp430", "dr5"]     # paper table column order

ENGINES = ("serial", "event", "parallel", "batch")


def _make_tracer(trace, progress: bool) -> Optional[Tracer]:
    from ..coanalysis.trace import TraceSink
    sinks = []
    if isinstance(trace, TraceSink):
        sinks.append(trace)            # caller-configured sink (service)
    elif trace:
        sinks.append(JsonlTraceSink(trace))
    if progress:
        sinks.append(ProgressLine())
    return Tracer(sinks) if sinks else None


def _pair_fingerprint(design: str, benchmark: str,
                      strategy: Optional[MergeStrategy],
                      target, constraints,
                      engine: str = "serial", frontier: str = "dfs",
                      max_cycles_per_path: int = 20000,
                      max_total_cycles: Optional[int] = 2_000_000,
                      lanes: Optional[int] = None,
                      ) -> RunFingerprint:
    """Fingerprint one (design, benchmark) configuration."""
    return run_fingerprint(
        netlist=target.netlist, strategy=strategy,
        constraints=constraints, design=design, application=benchmark,
        program=target.program, data_init=target.data_init,
        symbolic_ranges=target.symbolic_ranges,
        engine=engine, frontier=frontier,
        max_cycles_per_path=max_cycles_per_path,
        max_total_cycles=max_total_cycles, lanes=lanes)


def pair_fingerprint(design: str, benchmark: str,
                     strategy: Optional[MergeStrategy] = None,
                     use_constraints: bool = True,
                     engine: str = "serial", frontier: str = "dfs",
                     lanes: Optional[int] = None,
                     max_cycles_per_path: int = 20000,
                     max_total_cycles: Optional[int] = 2_000_000,
                     ) -> RunFingerprint:
    """Fingerprint a (design, benchmark) run the way :func:`run_one`
    would key its caches.

    Builds the target and constraint set itself and applies the same
    normalizations ``run_one`` applies before hashing (the parallel
    engine runs without a total-cycle budget; the lane width defaults to
    64 on the batch engine and is ``None`` elsewhere), so a submission
    keyed on this digest shares segment caches and run manifests with a
    direct ``repro run --cache`` of the same configuration.
    """
    workload = WORKLOADS[benchmark]
    target = build_target(design, workload)
    constraints = None
    text = workload.constraints.get(design) if use_constraints else None
    if text:
        constraints = ConstraintSet(parse_constraints(text),
                                    target.state_net_positions())
    return _pair_fingerprint(
        design, benchmark, strategy or UberConservative(),
        target, constraints, engine=engine, frontier=frontier,
        max_cycles_per_path=max_cycles_per_path,
        max_total_cycles=(None if engine == "parallel"
                          else max_total_cycles),
        lanes=((lanes or 64) if engine == "batch" else None))


def _register_run(store: ContentStore, fp: RunFingerprint,
                  result: CoAnalysisResult, checkpoint, trace) -> None:
    """Write the ``run-<digest>`` manifest, registering the run's
    on-disk artifacts (checkpoint journal, JSONL trace) as blobs."""
    artifacts: Dict[str, str] = {}
    for label, source in (("checkpoint", checkpoint), ("trace", trace)):
        path = getattr(source, "path", source)
        try:
            if path is not None and Path(path).is_file():
                artifacts[label] = store.put_bytes(
                    Path(path).read_bytes())
        except OSError:
            continue                    # unreadable artifact: skip it
    store.put_manifest(f"run-{fp.digest}", {
        "kind": "run",
        "fingerprint": fp.digest,
        "components": fp.components,
        "summary": result.summary(),
        "segments_manifest": f"segments-{fp.digest}",
        "artifacts": artifacts,
    })


def run_one(design: str, benchmark: str,
            strategy: Optional[MergeStrategy] = None,
            max_cycles_per_path: int = 20000,
            max_total_cycles: int = 2_000_000,
            use_constraints: bool = True,
            checkpoint=None,
            resume: bool = False,
            workers: int = 1,
            frontier: str = "dfs",
            engine: Optional[str] = None,
            trace=None,
            progress: bool = False,
            budget=None,
            quarantine=None,
            cache=None,
            lanes: Optional[int] = None) -> CoAnalysisResult:
    """One symbolic co-analysis run.

    ``strategy`` is the CSM merge strategy; ``frontier`` schedules the
    path frontier (``dfs``/``bfs``/``novelty``).  ``engine`` picks the
    simulation backend (``serial``, ``event``, ``parallel`` or
    ``batch``; default: serial, or parallel when ``workers > 1``) -- all
    of them run through the same
    :class:`~repro.coanalysis.kernel.ExplorationKernel`.  ``batch``
    simulates the whole frontier in lockstep on the bit-packed
    lane-parallel engine (``lanes`` paths per settle -- any multiple of
    64, default 64 -- one process, freed lanes refilled from the
    frontier by compaction).
    ``checkpoint``/``resume`` journal the run to disk and continue an
    interrupted one (see :mod:`repro.resilience`); ``trace`` writes the
    structured event stream as JSONL and ``progress`` keeps a live
    status line.  ``budget`` is an optional
    :class:`~repro.resilience.governor.RunBudget` governing the run
    (deadline / RSS ceiling / frontier and segment caps -- a tripped
    limit returns a :class:`~repro.coanalysis.results.PartialResult`);
    ``quarantine`` is a poison-segment threshold (int) or
    :class:`~repro.resilience.quarantine.QuarantineRegistry`.

    ``cache`` is a directory (or :class:`~repro.store.ContentStore`)
    holding a content-addressed artifact store: settled segment results
    are memoized under the run's fingerprint, so re-running an identical
    (binary, netlist, CSM, engine, strategy) configuration replays
    segments instead of re-simulating them, and a ``run-<digest>``
    manifest records the run and its artifacts.
    """
    if engine is None:
        engine = "parallel" if workers > 1 else "serial"
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: "
                         + ", ".join(ENGINES))
    if lanes is not None and engine != "batch":
        raise ValueError("--lanes requires --engine batch")
    workload = WORKLOADS[benchmark]
    target = build_target(design, workload)
    constraints = None
    text = workload.constraints.get(design) if use_constraints else None
    if text:
        constraints = ConstraintSet(parse_constraints(text),
                                    target.state_net_positions())
    strategy = strategy or UberConservative()
    csm = ConservativeStateManager(strategy, constraints=constraints)
    tracer = _make_tracer(trace, progress)

    store = fp = segment_cache = None
    if cache is not None:
        store = cache if isinstance(cache, ContentStore) \
            else ContentStore(Path(cache))
        fp = _pair_fingerprint(
            design, benchmark, strategy, target, constraints,
            engine=engine, frontier=frontier,
            max_cycles_per_path=max_cycles_per_path,
            # the parallel engine runs without a total-cycle budget
            max_total_cycles=(None if engine == "parallel"
                              else max_total_cycles),
            # the lane width is part of the batch engine's identity: a
            # warm cache at one width misses cleanly at another
            lanes=((lanes or 64) if engine == "batch" else None))
        segment_cache = SegmentResultCache(store, fp.digest)

    if engine == "parallel":
        from ..coanalysis.parallel import (ParallelCoAnalysis,
                                           WorkloadTargetFactory)
        runner = ParallelCoAnalysis(WorkloadTargetFactory(design, benchmark),
                                    csm=csm, workers=max(1, workers),
                                    max_cycles_per_path=max_cycles_per_path,
                                    application=benchmark,
                                    checkpoint=checkpoint, resume=resume,
                                    frontier=frontier, tracer=tracer,
                                    budget=budget, quarantine=quarantine,
                                    segment_cache=segment_cache)
    else:
        runner = CoAnalysisEngine(target, csm=csm,
                                  max_cycles_per_path=max_cycles_per_path,
                                  max_total_cycles=max_total_cycles,
                                  application=benchmark,
                                  checkpoint=checkpoint, resume=resume,
                                  frontier=frontier, tracer=tracer,
                                  backend={"serial": "cycle",
                                           "event": "event",
                                           "batch": "batch"}[engine],
                                  budget=budget, quarantine=quarantine,
                                  segment_cache=segment_cache,
                                  lanes=lanes)
    result = runner.run()
    if store is not None:
        _register_run(store, fp, result, checkpoint, trace)
    return result


def _load_grid_entry(store: ContentStore,
                     name: str) -> Optional[CoAnalysisResult]:
    """Load one cached grid result; any corruption -- truncated blob,
    bad pickle, missing manifest key, wrong type -- falls through to a
    fresh run instead of crashing the whole grid."""
    try:
        manifest = store.get_manifest(name)
        if not manifest:
            return None
        result = pickle.loads(store.get_bytes(manifest["result"]))
        return result if isinstance(result, CoAnalysisResult) else None
    except Exception:
        return None


def run_grid(designs: Sequence[str] = tuple(DESIGN_ORDER),
             benchmarks: Sequence[str] = tuple(WORKLOAD_ORDER),
             strategy_factory: Callable[[], MergeStrategy] =
             UberConservative,
             cache_dir: Optional[Path] = None,
             verbose: bool = False,
             ) -> Dict[str, Dict[str, CoAnalysisResult]]:
    """Run (or load) the full co-analysis grid.

    Returns ``results[design][benchmark]``.  When ``cache_dir`` is
    given, completed runs are stored in a content-addressed
    :class:`~repro.store.ContentStore` there and reused.  Entries are
    keyed by each pair's full run fingerprint -- netlist structure, CSM
    strategy and constraints, assembled binary, budgets -- so *any*
    change to those inputs gets a fresh run automatically, and ablation
    strategies get distinct entries for free.
    """
    store = ContentStore(Path(cache_dir)) if cache_dir is not None \
        else None
    results: Dict[str, Dict[str, CoAnalysisResult]] = {}
    for design in designs:
        results[design] = {}
        for benchmark in benchmarks:
            strategy = strategy_factory()
            name = None
            if store is not None:
                workload = WORKLOADS[benchmark]
                target = build_target(design, workload)
                constraints = None
                text = workload.constraints.get(design)
                if text:
                    constraints = ConstraintSet(
                        parse_constraints(text),
                        target.state_net_positions())
                fp = _pair_fingerprint(design, benchmark, strategy,
                                       target, constraints)
                name = f"grid-{fp.digest}"
                cached = _load_grid_entry(store, name)
                if cached is not None:
                    results[design][benchmark] = cached
                    continue
            t0 = time.perf_counter()
            result = run_one(design, benchmark, strategy=strategy)
            if verbose:
                m = result.metrics
                print(f"  {design:>8} / {benchmark:<10}"
                      f" paths={result.paths_created:<5}"
                      f" merged={m.merges_covered:<5}"
                      f" cycles={m.simulated_cycles:<7}"
                      f" frontier_max={m.frontier_high_water:<4}"
                      f" exercisable={result.exercisable_gate_count}"
                      f" ({time.perf_counter() - t0:.1f}s)")
            results[design][benchmark] = result
            if store is not None:
                # the blob write and the manifest write are each atomic,
                # and the manifest goes last: a run killed mid-store
                # leaves no entry, never a torn one
                digest = store.put_bytes(
                    pickle.dumps(result,
                                 protocol=pickle.HIGHEST_PROTOCOL))
                store.put_manifest(name, {
                    "kind": "grid",
                    "design": design,
                    "benchmark": benchmark,
                    "strategy": strategy.name,
                    "fingerprint": fp.digest,
                    "components": fp.components,
                    "result": digest,
                })
    return results


def default_cache_dir() -> Path:
    """Where grid results cache by default.

    ``REPRO_CACHE_DIR`` wins when set; otherwise the platform user
    cache (``$XDG_CACHE_HOME``/``~/.cache``) -- never the installed
    package tree, which may be read-only and is shared between
    projects.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"
