"""Experiment runner: the full (design x benchmark) co-analysis grid.

Every table and figure in the paper's evaluation is a projection of one
grid of co-analysis runs (3 designs x 6 benchmarks).  This module runs
that grid once and caches results on disk, so the per-table benchmark
harnesses in ``benchmarks/`` can each render their artifact without
re-simulating.
"""

from __future__ import annotations

import pickle
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from ..coanalysis.engine import CoAnalysisEngine
from ..coanalysis.results import CoAnalysisResult
from ..coanalysis.trace import JsonlTraceSink, ProgressLine, Tracer
from ..csm.constraints import ConstraintSet, parse_constraints
from ..csm.manager import ConservativeStateManager
from ..csm.strategies import MergeStrategy, UberConservative
from ..workloads import WORKLOAD_ORDER, WORKLOADS, build_target

DESIGN_ORDER = ["bm32", "omsp430", "dr5"]     # paper table column order

_GRID_VERSION = 6   # bump to invalidate caches when semantics change

ENGINES = ("serial", "event", "parallel", "batch")


def _make_tracer(trace, progress: bool) -> Optional[Tracer]:
    sinks = []
    if trace:
        sinks.append(JsonlTraceSink(trace))
    if progress:
        sinks.append(ProgressLine())
    return Tracer(sinks) if sinks else None


def run_one(design: str, benchmark: str,
            strategy: Optional[MergeStrategy] = None,
            max_cycles_per_path: int = 20000,
            max_total_cycles: int = 2_000_000,
            use_constraints: bool = True,
            checkpoint=None,
            resume: bool = False,
            workers: int = 1,
            frontier: str = "dfs",
            engine: Optional[str] = None,
            trace=None,
            progress: bool = False,
            budget=None,
            quarantine=None) -> CoAnalysisResult:
    """One symbolic co-analysis run (no caching).

    ``strategy`` is the CSM merge strategy; ``frontier`` schedules the
    path frontier (``dfs``/``bfs``/``novelty``).  ``engine`` picks the
    simulation backend (``serial``, ``event``, ``parallel`` or
    ``batch``; default: serial, or parallel when ``workers > 1``) -- all
    of them run through the same
    :class:`~repro.coanalysis.kernel.ExplorationKernel`.  ``batch``
    simulates the whole frontier in lockstep on the bit-packed
    lane-parallel engine (up to 64 paths per settle, one process).
    ``checkpoint``/``resume`` journal the run to disk and continue an
    interrupted one (see :mod:`repro.resilience`); ``trace`` writes the
    structured event stream as JSONL and ``progress`` keeps a live
    status line.  ``budget`` is an optional
    :class:`~repro.resilience.governor.RunBudget` governing the run
    (deadline / RSS ceiling / frontier and segment caps -- a tripped
    limit returns a :class:`~repro.coanalysis.results.PartialResult`);
    ``quarantine`` is a poison-segment threshold (int) or
    :class:`~repro.resilience.quarantine.QuarantineRegistry`.
    """
    if engine is None:
        engine = "parallel" if workers > 1 else "serial"
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: "
                         + ", ".join(ENGINES))
    workload = WORKLOADS[benchmark]
    target = build_target(design, workload)
    constraints = None
    text = workload.constraints.get(design) if use_constraints else None
    if text:
        constraints = ConstraintSet(parse_constraints(text),
                                    target.state_net_positions())
    csm = ConservativeStateManager(strategy or UberConservative(),
                                   constraints=constraints)
    tracer = _make_tracer(trace, progress)
    if engine == "parallel":
        from ..coanalysis.parallel import (ParallelCoAnalysis,
                                           WorkloadTargetFactory)
        runner = ParallelCoAnalysis(WorkloadTargetFactory(design, benchmark),
                                    csm=csm, workers=max(1, workers),
                                    max_cycles_per_path=max_cycles_per_path,
                                    application=benchmark,
                                    checkpoint=checkpoint, resume=resume,
                                    frontier=frontier, tracer=tracer,
                                    budget=budget, quarantine=quarantine)
        return runner.run()
    runner = CoAnalysisEngine(target, csm=csm,
                              max_cycles_per_path=max_cycles_per_path,
                              max_total_cycles=max_total_cycles,
                              application=benchmark,
                              checkpoint=checkpoint, resume=resume,
                              frontier=frontier, tracer=tracer,
                              backend={"serial": "cycle",
                                       "event": "event",
                                       "batch": "batch"}[engine],
                              budget=budget, quarantine=quarantine)
    return runner.run()


def _cache_path(cache_dir: Path, design: str, benchmark: str,
                tag: str) -> Path:
    return cache_dir / f"grid_v{_GRID_VERSION}_{design}_{benchmark}_{tag}.pkl"


def run_grid(designs: Sequence[str] = tuple(DESIGN_ORDER),
             benchmarks: Sequence[str] = tuple(WORKLOAD_ORDER),
             strategy_factory: Callable[[], MergeStrategy] =
             UberConservative,
             cache_dir: Optional[Path] = None,
             verbose: bool = False,
             ) -> Dict[str, Dict[str, CoAnalysisResult]]:
    """Run (or load) the full co-analysis grid.

    Returns ``results[design][benchmark]``.  When ``cache_dir`` is given,
    completed runs are pickled there and reused; the cache key includes
    the strategy name, so ablations get distinct entries.
    """
    tag = strategy_factory().name
    results: Dict[str, Dict[str, CoAnalysisResult]] = {}
    for design in designs:
        results[design] = {}
        for benchmark in benchmarks:
            cached = None
            path = None
            if cache_dir is not None:
                cache_dir.mkdir(parents=True, exist_ok=True)
                path = _cache_path(cache_dir, design, benchmark, tag)
                if path.exists():
                    with path.open("rb") as fh:
                        cached = pickle.load(fh)
            if cached is not None:
                results[design][benchmark] = cached
                continue
            t0 = time.perf_counter()
            result = run_one(design, benchmark,
                             strategy=strategy_factory())
            if verbose:
                m = result.metrics
                print(f"  {design:>8} / {benchmark:<10}"
                      f" paths={result.paths_created:<5}"
                      f" merged={m.merges_covered:<5}"
                      f" cycles={m.simulated_cycles:<7}"
                      f" frontier_max={m.frontier_high_water:<4}"
                      f" exercisable={result.exercisable_gate_count}"
                      f" ({time.perf_counter() - t0:.1f}s)")
            results[design][benchmark] = result
            if path is not None:
                # atomic: a run killed mid-dump must not leave a torn
                # pickle that poisons every later grid invocation
                from ..resilience.artifacts import atomic_write_bytes
                atomic_write_bytes(
                    path, pickle.dumps(result,
                                       protocol=pickle.HIGHEST_PROTOCOL))
    return results


def default_cache_dir() -> Path:
    return Path(__file__).resolve().parents[3] / ".repro_cache"
