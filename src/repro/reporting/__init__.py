"""Renderers and runners for the paper's tables and figures."""

from .figures import figure5, figure6
from .runner import (DESIGN_ORDER, default_cache_dir, run_grid, run_one)
from .tables import (equivalence_table, render_table, resilience_table,
                     results_csv, table1, table2, table3, table4)

__all__ = [
    "figure5", "figure6",
    "run_grid", "run_one", "DESIGN_ORDER", "default_cache_dir",
    "render_table", "table1", "table2", "table3", "table4", "results_csv",
    "equivalence_table", "resilience_table",
]
