"""ASCII renderings of the paper's figures.

* Figure 5: percentage reduction of toggled (exercisable) gates per
  benchmark, grouped by design.
* Figure 6: number of simulated paths per benchmark, grouped by design
  (log-scaled bars, since path counts span orders of magnitude).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..coanalysis.results import CoAnalysisResult

ResultGrid = Mapping[str, Mapping[str, CoAnalysisResult]]


def _bar(value: float, vmax: float, width: int = 40) -> str:
    if vmax <= 0:
        return ""
    n = int(round(width * value / vmax))
    return "#" * max(0, min(width, n))


def figure5(results: ResultGrid, benchmarks: Sequence[str],
            designs: Sequence[str], width: int = 40) -> str:
    """Gate-count reduction per benchmark (paper Figure 5)."""
    lines = ["Figure 5: % reduction in exercisable gate count",
             "(designs with unused peripherals prune the most)", ""]
    vmax = 100.0
    for bench in benchmarks:
        lines.append(bench)
        for design in designs:
            r = results[design][bench]
            pct = r.reduction_percent
            lines.append(f"  {design:<10} |{_bar(pct, vmax, width):<{width}}|"
                         f" {pct:5.1f}%")
        lines.append("")
    return "\n".join(lines)


def figure6(results: ResultGrid, benchmarks: Sequence[str],
            designs: Sequence[str], width: int = 40) -> str:
    """Simulated path counts per benchmark (paper Figure 6), log scale."""
    lines = ["Figure 6: simulation paths per benchmark (log scale)",
             "(wide compare registers need more paths than 1-bit flags)",
             ""]
    vmax = max(math.log10(max(results[d][b].paths_created, 1) + 1)
               for d in designs for b in benchmarks)
    for bench in benchmarks:
        lines.append(bench)
        for design in designs:
            r = results[design][bench]
            logv = math.log10(r.paths_created + 1)
            lines.append(
                f"  {design:<10} |{_bar(logv, vmax, width):<{width}}| "
                f"{r.paths_created}")
        lines.append("")
    return "\n".join(lines)
