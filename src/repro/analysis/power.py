"""Activity-based power and energy estimation.

The bespoke methodology's motivation is ultra-low power: pruning
unexercisable gates removes their leakage entirely and removes the
dynamic power of everything that used to toggle beneath them.  This
module implements the standard early-estimation model

* dynamic energy per toggle  ~ cell switching-energy weight, and
* leakage power              ~ cell area,

on top of the cell library's area weights.  Units are arbitrary
("normalized nW / fJ"), consistent across netlists, so *ratios* between
an original and a bespoke core are meaningful even though absolute
silicon numbers are not (no 65nm characterization data offline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..coanalysis.target import SymbolicTarget
from ..netlist.netlist import Netlist

#: switching energy per output toggle, in units of a NAND2 toggle
SWITCH_ENERGY = {
    "TIE0": 0.0, "TIE1": 0.0,
    "BUF": 0.6, "NOT": 0.5,
    "AND": 1.1, "OR": 1.1, "NAND": 1.0, "NOR": 1.0,
    "XOR": 1.8, "XNOR": 1.8, "MUX2": 1.6,
    "DFF": 3.0, "DFFR": 3.2, "DFFE": 3.4, "DFFER": 3.6,
}

#: leakage per unit area (NAND2-equivalents), normalized
LEAKAGE_PER_AREA = 1.0

#: clock-tree energy charged per flop per cycle (the clock pin toggles
#: every cycle regardless of data activity)
CLOCK_ENERGY_PER_FLOP = 0.8


@dataclass
class PowerReport:
    """Energy/power estimate for one run of one netlist."""

    design: str
    cycles: int
    dynamic_energy: float          # data switching
    clock_energy: float            # clock tree
    leakage_power: float           # per-cycle leakage
    toggles: int

    @property
    def leakage_energy(self) -> float:
        return self.leakage_power * self.cycles

    @property
    def total_energy(self) -> float:
        return self.dynamic_energy + self.clock_energy \
            + self.leakage_energy

    @property
    def average_power(self) -> float:
        return self.total_energy / max(1, self.cycles)

    def summary(self) -> Dict[str, float]:
        return {
            "design": self.design,
            "cycles": self.cycles,
            "dynamic_energy": round(self.dynamic_energy, 2),
            "clock_energy": round(self.clock_energy, 2),
            "leakage_energy": round(self.leakage_energy, 2),
            "total_energy": round(self.total_energy, 2),
            "average_power": round(self.average_power, 3),
        }


def leakage_power(netlist: Netlist) -> float:
    """Total leakage of a netlist (area-proportional)."""
    return LEAKAGE_PER_AREA * netlist.area()


class PowerMeter:
    """Counts per-net toggles during a simulation for energy estimation.

    Use as a cycle observer (``meter.observe(sim)`` after each settled
    cycle) or via :func:`measure_concrete_run`.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._energy_by_net = np.zeros(len(netlist.nets))
        for gate in netlist.gates:
            self._energy_by_net[gate.output] = SWITCH_ENERGY[gate.kind]
        self.toggle_counts = np.zeros(len(netlist.nets), dtype=np.int64)
        self._prev_val: Optional[np.ndarray] = None
        self._prev_known: Optional[np.ndarray] = None
        self.cycles = 0

    def observe(self, sim) -> None:
        """Record one settled cycle of ``sim``."""
        if self._prev_val is not None:
            changed = (sim.val != self._prev_val) | \
                      (sim.known != self._prev_known)
            self.toggle_counts += changed
            self.cycles += 1
        self._prev_val = sim.val.copy()
        self._prev_known = sim.known.copy()

    @property
    def total_toggles(self) -> int:
        return int(self.toggle_counts.sum())

    def dynamic_energy(self) -> float:
        return float((self.toggle_counts * self._energy_by_net).sum())

    def report(self, design: str) -> PowerReport:
        n_flops = len(self.netlist.seq_gates)
        return PowerReport(
            design=design,
            cycles=self.cycles,
            dynamic_energy=self.dynamic_energy(),
            clock_energy=CLOCK_ENERGY_PER_FLOP * n_flops * self.cycles,
            leakage_power=leakage_power(self.netlist),
            toggles=self.total_toggles,
        )


def measure_concrete_run(target: SymbolicTarget, inputs: Dict[int, int],
                         max_cycles: int = 20000) -> PowerReport:
    """Run the target's application with fixed inputs, metering power."""
    meter = PowerMeter(target.netlist)
    sim = target.make_sim()
    target.reset(sim)
    target.apply_concrete_inputs(sim, inputs)  # type: ignore[attr-defined]
    target.drive_all(sim)
    meter.observe(sim)
    cycles = 0
    while cycles < max_cycles:
        target.drive_all(sim)
        if target.is_done(sim):
            break
        meter.observe(sim)
        target.on_edge(sim)
        sim.clock_edge()
        cycles += 1
    return meter.report(target.name)


@dataclass
class SavingsReport:
    """Original-vs-bespoke power comparison (the bespoke payoff)."""

    original: PowerReport
    bespoke: PowerReport

    @property
    def energy_saving_percent(self) -> float:
        return 100.0 * (1 - self.bespoke.total_energy
                        / max(1e-12, self.original.total_energy))

    @property
    def leakage_saving_percent(self) -> float:
        return 100.0 * (1 - self.bespoke.leakage_power
                        / max(1e-12, self.original.leakage_power))


def compare_power(original: SymbolicTarget, bespoke: SymbolicTarget,
                  inputs: Dict[int, int],
                  max_cycles: int = 20000) -> SavingsReport:
    """Meter the same fixed-input run on both netlists."""
    return SavingsReport(
        original=measure_concrete_run(original, inputs, max_cycles),
        bespoke=measure_concrete_run(bespoke, inputs, max_cycles),
    )
