"""Static timing analysis and the voltage-overscaling connection.

Prior work [8, 18] uses co-analysis to exploit *dynamic timing slack*:
if an application can never exercise the longest paths of a design, the
supply voltage can be lowered (slowing every gate) until the longest
path it *can* exercise just meets timing.  This module provides:

* a unit-delay-weighted static timing analyzer over the netlist DAG
  (flop-to-flop, input-to-flop, and flop-to-output paths), and
* :func:`exercisable_critical_path`, the longest path restricted to the
  exercisable gate set -- whose ratio to the full critical path is
  exactly the voltage-scaling headroom surrogate.

Delays are in normalized gate-delay units (a NAND2 = 1.0), consistent
across netlists, so before/after ratios are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..netlist.netlist import Netlist
from ..sim.activity import ToggleProfile

#: propagation delay per cell kind, normalized to NAND2 = 1.0
CELL_DELAY = {
    "TIE0": 0.0, "TIE1": 0.0,
    "BUF": 0.7, "NOT": 0.6,
    "AND": 1.2, "OR": 1.2, "NAND": 1.0, "NOR": 1.1,
    "XOR": 1.8, "XNOR": 1.8, "MUX2": 1.5,
    # clock-to-Q for flops (their D input terminates a path)
    "DFF": 1.4, "DFFR": 1.5, "DFFE": 1.6, "DFFER": 1.7,
}


@dataclass
class TimingReport:
    """Longest-path analysis of one netlist."""

    critical_delay: float
    critical_path: List[str]          # gate names, source to sink
    endpoint: str                     # net name at the path end
    gate_count: int

    def summary(self) -> Dict[str, object]:
        return {
            "critical_delay": round(self.critical_delay, 2),
            "stages": len(self.critical_path),
            "endpoint": self.endpoint,
        }


def _arrival_times(netlist: Netlist,
                   allowed: Optional[Set[int]] = None
                   ) -> Tuple[Dict[int, float], Dict[int, Optional[int]]]:
    """Latest arrival time per net and the driving gate on that path.

    Sources (arrival 0): primary inputs and flop outputs.  ``allowed``
    restricts propagation to a gate subset (exercisable-only timing).
    """
    arrival: Dict[int, float] = {}
    via: Dict[int, Optional[int]] = {}
    for net in netlist.inputs:
        arrival[net] = 0.0
        via[net] = None
    order = sorted((g for g in netlist.gates),
                   key=lambda g: netlist.levelize()[g.index])
    for gate in netlist.gates:
        if gate.is_sequential:
            arrival[gate.output] = CELL_DELAY[gate.kind]
            via[gate.output] = gate.index
    for gate in order:
        if gate.is_sequential:
            continue
        if allowed is not None and gate.index not in allowed:
            continue
        ins = [arrival.get(i) for i in gate.inputs]
        known = [a for a in ins if a is not None]
        if not known and gate.cell.arity:
            continue
        start = max(known) if known else 0.0
        t = start + CELL_DELAY[gate.kind]
        if t > arrival.get(gate.output, -1.0):
            arrival[gate.output] = t
            via[gate.output] = gate.index
    return arrival, via


def _trace_path(netlist: Netlist, via: Dict[int, Optional[int]],
                arrival: Dict[int, float], endpoint: int) -> List[str]:
    path: List[str] = []
    net = endpoint
    seen = set()
    while net not in seen:
        seen.add(net)
        gate_idx = via.get(net)
        if gate_idx is None:
            break
        gate = netlist.gates[gate_idx]
        path.append(gate.name)
        if gate.is_sequential or not gate.inputs:
            break
        net = max(gate.inputs,
                  key=lambda i: arrival.get(i, float("-inf")))
    return list(reversed(path))


def critical_path(netlist: Netlist,
                  allowed: Optional[Set[int]] = None) -> TimingReport:
    """Longest register-to-register / input-to-register path."""
    arrival, via = _arrival_times(netlist, allowed)
    # endpoints: D/E/R pins of flops and primary outputs
    best_net, best_t = None, -1.0
    for gate in netlist.gates:
        if not gate.is_sequential:
            continue
        if allowed is not None and gate.index not in allowed:
            continue
        for pin in gate.inputs:
            t = arrival.get(pin)
            if t is not None and t > best_t:
                best_net, best_t = pin, t
    for net in netlist.outputs:
        t = arrival.get(net)
        if t is not None and t > best_t:
            best_net, best_t = net, t
    if best_net is None:
        return TimingReport(0.0, [], "", netlist.gate_count())
    return TimingReport(
        critical_delay=best_t,
        critical_path=_trace_path(netlist, via, arrival, best_net),
        endpoint=netlist.net_name(best_net),
        gate_count=netlist.gate_count(),
    )


def exercisable_critical_path(netlist: Netlist,
                              profile: ToggleProfile) -> TimingReport:
    """Longest path through *exercisable* gates only.

    A path no application input can sensitize cannot fail timing for
    this application; its excess delay over the exercisable critical
    path is headroom for voltage overscaling (prior work [8, 18])."""
    allowed = profile.exercisable_gates()
    # sequential cells always participate (state must hold at speed)
    allowed |= {g.index for g in netlist.gates if g.is_sequential}
    return critical_path(netlist, allowed)


@dataclass
class SlackReport:
    """Full vs application-specific timing."""

    full: TimingReport
    exercisable: TimingReport

    @property
    def slack_percent(self) -> float:
        if self.full.critical_delay <= 0:
            return 0.0
        return 100.0 * (1 - self.exercisable.critical_delay
                        / self.full.critical_delay)

    @property
    def voltage_headroom(self) -> float:
        """First-order alpha-power surrogate: delay scales ~1/V, so the
        tolerable relative voltage reduction equals the slack ratio."""
        return self.slack_percent / 100.0


def timing_slack(netlist: Netlist, profile: ToggleProfile) -> SlackReport:
    return SlackReport(full=critical_path(netlist),
                       exercisable=exercisable_critical_path(netlist,
                                                             profile))
