"""Application-specific analyses built on co-analysis results."""

from .coverage import (CoverageReport, PcCoverageObserver,
                       analyze_coverage, isa_usage)
from .gating import GatingReport, analyze_gating, gating_from_result
from .peak_power import (PeakPowerObserver, PeakPowerResult,
                         analyze_peak_power, concrete_peak)
from .power import (PowerMeter, PowerReport, SavingsReport, compare_power,
                    leakage_power, measure_concrete_run)
from .timing import (SlackReport, TimingReport, critical_path,
                     exercisable_critical_path, timing_slack)

__all__ = [
    "PowerMeter", "PowerReport", "SavingsReport",
    "measure_concrete_run", "compare_power", "leakage_power",
    "PeakPowerObserver", "PeakPowerResult", "analyze_peak_power",
    "concrete_peak",
    "TimingReport", "SlackReport", "critical_path",
    "exercisable_critical_path", "timing_slack",
    "CoverageReport", "PcCoverageObserver", "analyze_coverage",
    "isa_usage",
    "GatingReport", "analyze_gating", "gating_from_result",
]
