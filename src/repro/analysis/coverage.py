"""Symbolic program coverage: which instructions can any input reach?

A by-product of co-analysis the paper's related work exploits (the
reduced-ISA generation of [1]): the set of PC values reachable across
*all* inputs.  Program words never reached are dead code; opcodes never
decoded bound the ISA subset the application needs; both feed
application-specific hardware reduction.

Implemented as a cycle observer on the standard engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..coanalysis.engine import CoAnalysisEngine
from ..coanalysis.results import CoAnalysisResult
from ..isa.asm import Program
from ..processors.harness import CoreTarget


class PcCoverageObserver:
    """Records every concrete PC value seen during co-analysis."""

    def __init__(self, target: CoreTarget):
        self.target = target
        self.visited: Set[int] = set()

    def __call__(self, sim, path_id: int, cycle: int) -> None:
        pc = self.target.current_pc(sim)
        if pc is not None:
            self.visited.add(pc)


@dataclass
class CoverageReport:
    """Input-independent reachability of a program's instructions."""

    program: Program
    visited: Set[int]
    analysis: Optional[CoAnalysisResult] = None

    @property
    def reachable(self) -> List[int]:
        return sorted(a for a in self.visited if a < self.program.size)

    @property
    def dead(self) -> List[int]:
        return [a for a in range(self.program.size)
                if a not in self.visited]

    @property
    def coverage_percent(self) -> float:
        if self.program.size == 0:
            return 100.0
        return 100.0 * len(self.reachable) / self.program.size

    def dead_labels(self) -> List[str]:
        by_addr = {v: k for k, v in self.program.labels.items()}
        return [by_addr[a] for a in self.dead if a in by_addr]

    def summary(self) -> Dict[str, object]:
        return {
            "program_words": self.program.size,
            "reachable_words": len(self.reachable),
            "dead_words": len(self.dead),
            "coverage_percent": round(self.coverage_percent, 1),
        }


def isa_usage(report: CoverageReport, design: str) -> Dict[str, int]:
    """Mnemonic histogram over the *reachable* program words.

    Instructions absent from this histogram are never decodable for any
    input -- candidates for reduced-ISA hardware generation [1]."""
    from ..isa.disasm import mnemonic_histogram
    words = [report.program.words[a] for a in report.reachable]
    return mnemonic_histogram(design, words)


def analyze_coverage(target: CoreTarget, application: str = "app",
                     **engine_kwargs) -> CoverageReport:
    """Run co-analysis with PC coverage recording attached."""
    observer = PcCoverageObserver(target)
    engine = CoAnalysisEngine(target, application=application,
                              cycle_observer=observer, **engine_kwargs)
    result = engine.run()
    return CoverageReport(program=target.program,
                          visited=observer.visited,
                          analysis=result)
