"""Module-oblivious power-gating analysis (prior work [6]).

Prior work power-gates at gate granularity rather than module
granularity: a gate can sleep whenever the *current execution* cannot
exercise it, even if its RTL module is otherwise active.  The enabling
information is per-path activity from symbolic co-analysis:

* **never-exercised** gates (the bespoke prune set) sleep permanently;
* **sometimes-exercised** gates are exercised on some execution paths
  only — they can be gated off whenever execution is on a path that
  provably avoids them;
* **always-exercised** gates must stay powered.

:func:`analyze_gating` classifies every gate and sizes the opportunity
(area that can sleep at least part of the time).  Run the engine with
``record_per_path_activity=True`` to collect the inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..coanalysis.engine import CoAnalysisEngine
from ..coanalysis.results import CoAnalysisResult
from ..coanalysis.target import SymbolicTarget
from ..netlist.netlist import Netlist


@dataclass
class GatingReport:
    """Gate classification by cross-path exercise frequency."""

    netlist: Netlist
    always: List[int] = field(default_factory=list)
    sometimes: List[int] = field(default_factory=list)
    never: List[int] = field(default_factory=list)
    #: per-gate fraction of completed paths that exercised it
    exercise_fraction: Dict[int, float] = field(default_factory=dict)
    paths_considered: int = 0

    def _area(self, gates: List[int]) -> float:
        return sum(self.netlist.gates[i].cell.area for i in gates)

    @property
    def always_area(self) -> float:
        return self._area(self.always)

    @property
    def sometimes_area(self) -> float:
        return self._area(self.sometimes)

    @property
    def never_area(self) -> float:
        return self._area(self.never)

    @property
    def gateable_area_percent(self) -> float:
        """Area that can sleep at least some of the time (the [6]-style
        opportunity beyond bespoke pruning)."""
        total = self.netlist.area()
        if total <= 0:
            return 0.0
        return 100.0 * (self.sometimes_area + self.never_area) / total

    def summary(self) -> Dict[str, object]:
        return {
            "paths": self.paths_considered,
            "always_gates": len(self.always),
            "sometimes_gates": len(self.sometimes),
            "never_gates": len(self.never),
            "gateable_area_percent": round(self.gateable_area_percent, 1),
        }


def gating_from_result(netlist: Netlist,
                       result: CoAnalysisResult) -> GatingReport:
    """Classify gates from a result that carries per-path activity."""
    if not result.per_path_exercised:
        raise ValueError(
            "result has no per-path activity; run the engine with "
            "record_per_path_activity=True")
    # Each segment is a suffix of an execution; a full execution's
    # exercised set is the union along its ancestor chain back to the
    # root segment.  Only completed executions define "a run".
    by_id = {rec.path_id: (rec, seg)
             for rec, seg in zip(result.path_records,
                                 result.per_path_exercised)}
    executions = []
    for rec, seg in zip(result.path_records, result.per_path_exercised):
        if rec.outcome != "done":
            continue
        full = seg.copy()
        parent = rec.parent
        while parent is not None:
            anc_rec, anc_seg = by_id[parent]
            full |= anc_seg
            parent = anc_rec.parent
        executions.append(full)
    if not executions:
        raise ValueError("no completed paths in result")
    union_exercised = result.profile.exercised_nets()

    report = GatingReport(netlist=netlist,
                          paths_considered=len(executions))
    counts = np.zeros(len(netlist.nets), dtype=np.int64)
    for seg in executions:
        counts += seg
    for gate in netlist.gates:
        hits = int(counts[gate.output])
        frac = hits / len(executions)
        report.exercise_fraction[gate.index] = frac
        if not union_exercised[gate.output]:
            report.never.append(gate.index)
        elif hits == len(executions):
            report.always.append(gate.index)
        else:
            report.sometimes.append(gate.index)
    return report


def analyze_gating(target: SymbolicTarget, application: str = "app",
                   **engine_kwargs) -> GatingReport:
    """Run co-analysis with per-path recording and classify gates."""
    engine = CoAnalysisEngine(target, application=application,
                              record_per_path_activity=True,
                              **engine_kwargs)
    result = engine.run()
    return gating_from_result(target.netlist, result)
