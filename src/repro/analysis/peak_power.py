"""Input-independent peak power bounds (prior work [5], enabled here).

One of the analyses the paper's tool unlocks: because symbolic
co-analysis covers *all* inputs, the per-cycle switching activity it
observes bounds the switching of any real execution.  A net that is
known-constant in a cycle cannot toggle then; a net carrying X *might*.
So

    peak_bound(cycle) = sum of switch energies of nets that either
                        changed or carry X in that cycle

maximized over every cycle of every explored path is a sound
input-independent peak-power bound, and the same quantity measured on a
concrete run must never exceed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..coanalysis.engine import CoAnalysisEngine
from ..coanalysis.results import CoAnalysisResult
from ..coanalysis.target import SymbolicTarget
from .power import SWITCH_ENERGY


@dataclass
class PeakPowerResult:
    """Peak-bound trace produced alongside a co-analysis run."""

    peak_bound: float                     # max over all cycles/paths
    peak_cycle: int                       # cycle index where it occurred
    peak_path: int
    per_path_peaks: Dict[int, float] = field(default_factory=dict)
    analysis: Optional[CoAnalysisResult] = None


class PeakPowerObserver:
    """Cycle observer computing the symbolic switching upper bound."""

    def __init__(self, netlist):
        self.energy = np.zeros(len(netlist.nets))
        for gate in netlist.gates:
            self.energy[gate.output] = SWITCH_ENERGY[gate.kind]
        self._prev_val: Optional[np.ndarray] = None
        self._prev_known: Optional[np.ndarray] = None
        self._prev_path: Optional[int] = None
        self.peak = 0.0
        self.peak_cycle = -1
        self.peak_path = -1
        self.per_path: Dict[int, float] = {}

    def __call__(self, sim, path_id: int, cycle: int) -> None:
        if self._prev_path != path_id:
            # new path segment: no previous cycle to diff against
            self._prev_val = sim.val.copy()
            self._prev_known = sim.known.copy()
            self._prev_path = path_id
            return
        may_switch = (~sim.known) | (~self._prev_known) | \
                     (sim.val != self._prev_val)
        bound = float((may_switch * self.energy).sum())
        if bound > self.per_path.get(path_id, 0.0):
            self.per_path[path_id] = bound
        if bound > self.peak:
            self.peak = bound
            self.peak_cycle = cycle
            self.peak_path = path_id
        self._prev_val = sim.val.copy()
        self._prev_known = sim.known.copy()


def analyze_peak_power(target: SymbolicTarget, application: str = "app",
                       **engine_kwargs) -> PeakPowerResult:
    """Run co-analysis with peak-power observation attached."""
    observer = PeakPowerObserver(target.netlist)
    engine = CoAnalysisEngine(target, application=application,
                              cycle_observer=observer, **engine_kwargs)
    result = engine.run()
    return PeakPowerResult(
        peak_bound=observer.peak,
        peak_cycle=observer.peak_cycle,
        peak_path=observer.peak_path,
        per_path_peaks=dict(observer.per_path),
        analysis=result,
    )


def concrete_peak(target: SymbolicTarget, inputs: Dict[int, int],
                  max_cycles: int = 20000) -> float:
    """Measured per-cycle switching peak of one fixed-input run."""
    energy = np.zeros(len(target.netlist.nets))
    for gate in target.netlist.gates:
        energy[gate.output] = SWITCH_ENERGY[gate.kind]
    sim = target.make_sim()
    target.reset(sim)
    target.apply_concrete_inputs(sim, inputs)  # type: ignore[attr-defined]
    target.drive_all(sim)
    prev_val = sim.val.copy()
    prev_known = sim.known.copy()
    peak = 0.0
    cycles = 0
    while cycles < max_cycles:
        target.drive_all(sim)
        if target.is_done(sim):
            break
        switched = (sim.val != prev_val) | (sim.known != prev_known)
        peak = max(peak, float((switched * energy).sum()))
        prev_val = sim.val.copy()
        prev_known = sim.known.copy()
        target.on_edge(sim)
        sim.clock_edge()
        cycles += 1
    return peak
