"""Conservative State Manager: repository, merge strategies, constraints."""

from .constraints import (ConstraintError, ConstraintSet, MemConstraint,
                          NetConstraint, load_constraints, parse_constraints)
from .manager import (CSMDecision, CSMStats, ConservativeStateManager)
from .strategies import Clustered, ExactSet, MergeStrategy, UberConservative

__all__ = [
    "ConservativeStateManager", "CSMDecision", "CSMStats",
    "MergeStrategy", "UberConservative", "Clustered", "ExactSet",
    "ConstraintSet", "ConstraintError", "NetConstraint", "MemConstraint",
    "parse_constraints", "load_constraints",
]
