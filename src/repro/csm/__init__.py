"""Conservative State Manager: repository, merge strategies, constraints."""

from .constraints import (ConstraintError, ConstraintSet, MemConstraint,
                          NetConstraint, load_constraints, parse_constraints)
from .manager import (CSMDecision, CSMStats, ConservativeStateManager)
from .strategies import Clustered, ExactSet, MergeStrategy, UberConservative

#: merge strategies by their user-facing name (``--csm`` on the CLI,
#: ``"csm"`` in a service :class:`~repro.service.jobs.JobSpec`) -- one
#: registry so every submission surface accepts the same vocabulary
CSM_STRATEGIES = {
    "uber": UberConservative,
    "clustered2": lambda: Clustered(k=2),
    "clustered4": lambda: Clustered(k=4),
    "exact": ExactSet,
}

__all__ = [
    "ConservativeStateManager", "CSMDecision", "CSMStats",
    "MergeStrategy", "UberConservative", "Clustered", "ExactSet",
    "CSM_STRATEGIES",
    "ConstraintSet", "ConstraintError", "NetConstraint", "MemConstraint",
    "parse_constraints", "load_constraints",
]
