"""The Conservative State Manager (paper section 3.3).

The CSM "maintains a repository of previously-simulated states",
indexed by the PC of the PC-changing instruction at which each state was
observed.  When the simulator halts and hands it a state, the CSM:

1. checks whether the state is a strict subset of what has already been
   simulated for that PC -- if so, the path is discarded ("skipped");
2. otherwise forms a more conservative state covering both (per the
   configured :class:`~repro.csm.strategies.MergeStrategy`), optionally
   applies designer constraints, stores it, and returns it so the engine
   can set the control-flow signals and continue down each execution path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.state import SimState
from .constraints import ConstraintSet
from .strategies import MergeStrategy, UberConservative


@dataclass
class CSMDecision:
    """Outcome of presenting one halted state to the CSM."""

    pc: int
    covered: bool                       # True -> discard this path
    resume_state: Optional[SimState]    # state to fork from when not covered


@dataclass
class CSMStats:
    observed: int = 0
    skipped: int = 0
    expanded: int = 0
    per_pc_observations: Dict[int, int] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, int]:
        return {
            "observed": self.observed,
            "skipped": self.skipped,
            "expanded": self.expanded,
            "distinct_pcs": len(self.per_pc_observations),
        }


class ConservativeStateManager:
    """PC-indexed repository of conservative simulation states."""

    def __init__(self, strategy: Optional[MergeStrategy] = None,
                 constraints: Optional[ConstraintSet] = None):
        self.strategy = strategy or UberConservative()
        self.constraints = constraints
        self.repository: Dict[int, List[SimState]] = {}
        self.stats = CSMStats()
        self._expanded: Dict[int, set] = {}

    def observe(self, pc: int, state: SimState) -> CSMDecision:
        """Present a halted simulation state observed at ``pc``."""
        self.stats.observed += 1
        self.stats.per_pc_observations[pc] = \
            self.stats.per_pc_observations.get(pc, 0) + 1
        entries = self.repository.setdefault(pc, [])
        covered, resume = self.strategy.observe(entries, state)
        if covered:
            self.stats.skipped += 1
            return CSMDecision(pc, True, None)
        if self.constraints is not None and resume is not None:
            resume = self.constraints.apply(resume)
        # Expansion memo: if this exact resume state was already pushed for
        # this PC, its successors have been explored -- treat as covered.
        # (Essential with constraints: a constrained super-state may not
        # strictly cover every raw observation, and without the memo the
        # same expansion would be re-issued forever.)
        memo = self._expanded.setdefault(pc, set())
        fp = resume.fingerprint()
        if fp in memo:
            self.stats.skipped += 1
            return CSMDecision(pc, True, None)
        memo.add(fp)
        self.stats.expanded += 1
        return CSMDecision(pc, False, resume)

    # -- snapshot / restore (checkpointing) --------------------------------
    #: bump when the snapshot layout changes
    SNAPSHOT_VERSION = 1

    def snapshot_state(self) -> dict:
        """Full picklable snapshot of the manager: repository, expansion
        memo, and statistics.  Used by the resilience layer to journal
        Algorithm 1 runs; pair with :meth:`restore_state`."""
        import copy
        return {
            "version": self.SNAPSHOT_VERSION,
            "strategy": self.strategy.name,
            "repository": {pc: [s.copy() for s in states]
                           for pc, states in self.repository.items()},
            "expanded": {pc: set(memo)
                         for pc, memo in self._expanded.items()},
            "stats": copy.deepcopy(self.stats),
        }

    def restore_state(self, blob: dict) -> None:
        """Restore a snapshot taken by :meth:`snapshot_state` in place.

        The configured merge strategy must match the one the snapshot
        was taken under -- resuming with a different strategy would
        silently change coverage decisions.
        """
        version = blob.get("version")
        if version != self.SNAPSHOT_VERSION:
            raise ValueError(f"CSM snapshot v{version} is not supported "
                             f"(this build reads v{self.SNAPSHOT_VERSION})")
        if blob["strategy"] != self.strategy.name:
            raise ValueError(
                f"CSM snapshot was taken with strategy "
                f"{blob['strategy']!r}, not {self.strategy.name!r}")
        self.repository = blob["repository"]
        self._expanded = blob["expanded"]
        self.stats = blob["stats"]

    # -- persistence -------------------------------------------------------
    def save_repository(self, path) -> None:
        """Persist the state repository (the paper's CSM keeps it on
        disk between the simulator processes it launches)."""
        import pickle
        from pathlib import Path
        blob = {
            "strategy": self.strategy.name,
            "repository": self.repository,
            "expanded": self._expanded,
            "stats": self.stats,
        }
        Path(path).write_bytes(
            pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL))

    @classmethod
    def load_repository(cls, path, strategy: Optional[MergeStrategy] = None,
                        constraints: Optional[ConstraintSet] = None
                        ) -> "ConservativeStateManager":
        """Rebuild a CSM from a saved repository file."""
        import pickle
        from pathlib import Path
        blob = pickle.loads(Path(path).read_bytes())
        if strategy is None:
            if blob["strategy"] != UberConservative.name:
                raise ValueError(
                    f"repository was built with strategy "
                    f"{blob['strategy']!r}; pass a matching strategy "
                    f"instance to load it")
        elif strategy.name != blob["strategy"]:
            raise ValueError(
                f"repository was built with strategy "
                f"{blob['strategy']!r}, not {strategy.name!r}")
        csm = cls(strategy=strategy, constraints=constraints)
        csm.repository = blob["repository"]
        csm._expanded = blob["expanded"]
        csm.stats = blob["stats"]
        return csm

    # -- introspection ---------------------------------------------------
    def states_for(self, pc: int) -> List[SimState]:
        return list(self.repository.get(pc, []))

    def pcs(self) -> List[int]:
        return sorted(self.repository)

    def total_states(self) -> int:
        return sum(len(v) for v in self.repository.values())

    def conservatism(self) -> int:
        """Total X bits across the repository -- a coarse measure of how
        much over-approximation the strategy has introduced."""
        return sum(s.count_x() for states in self.repository.values()
                   for s in states)
