"""Conservative-state formation strategies (paper section 3.3, Figure 3).

The CSM lets a designer choose *how* conservative states are formed, as
long as the formed state covers all observed states:

* :class:`UberConservative` -- one state per PC; every new observation is
  merged in, differing bits become ``X`` (Figure 3, red row; the approach
  of prior work [4] and the paper's evaluation default).  Fastest
  convergence, most over-approximation.
* :class:`Clustered` -- up to ``k`` states per PC; a new observation merges
  into the nearest existing state by Hamming-like distance (Figure 3, blue
  row).  Trades extra simulation paths for tighter states.
* :class:`ExactSet` -- never merge; keep every distinct observed state
  (Figure 3, green row).  No over-approximation, worst convergence; only
  viable for small control spaces.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.state import SimState


class MergeStrategy:
    """Interface: fold one observed state into a PC's state set."""

    name = "abstract"

    def observe(self, entries: List[SimState],
                state: SimState) -> Tuple[bool, Optional[SimState]]:
        """Returns ``(covered, resume_state)``.

        ``covered`` is True when ``state`` is already subsumed (the path
        can be discarded -- Algorithm 1's "skip").  Otherwise
        ``resume_state`` is the (possibly merged) state the simulation
        must continue from, and ``entries`` has been updated in place.
        """
        raise NotImplementedError


def _covered_by_any(entries: List[SimState], state: SimState) -> bool:
    return any(e.covers(state) for e in entries)


class UberConservative(MergeStrategy):
    """Single merged super-state per PC (the paper's default)."""

    name = "uber"

    def observe(self, entries: List[SimState],
                state: SimState) -> Tuple[bool, Optional[SimState]]:
        if not entries:
            entries.append(state)
            return False, state
        current = entries[0]
        if current.covers(state):
            return True, None
        merged = current.merge(state)
        entries[0] = merged
        return False, merged


def _distance(a: SimState, b: SimState) -> int:
    """Count of bit positions that would turn to X if a and b merged."""
    total = 0
    for val, known, oval, oknown in a._pairs(b):
        still_known = known & oknown & (val == oval)
        total += int((known | oknown).sum() - still_known.sum())
    return total


class Clustered(MergeStrategy):
    """At most ``k`` conservative states per PC, nearest-neighbour merge."""

    name = "clustered"

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def observe(self, entries: List[SimState],
                state: SimState) -> Tuple[bool, Optional[SimState]]:
        if _covered_by_any(entries, state):
            return True, None
        if len(entries) < self.k:
            entries.append(state)
            return False, state
        best = min(range(len(entries)),
                   key=lambda i: _distance(entries[i], state))
        merged = entries[best].merge(state)
        entries[best] = merged
        return False, merged


class ExactSet(MergeStrategy):
    """Keep every observed state distinct (no over-approximation)."""

    name = "exact"

    def observe(self, entries: List[SimState],
                state: SimState) -> Tuple[bool, Optional[SimState]]:
        if _covered_by_any(entries, state):
            return True, None
        entries.append(state)
        return False, state
