"""Application constraints on conservative states (paper section 3.3).

The CSM "accepts constraints in the form of a text file and uses them to
reduce over-approximation of conservative states" -- the mechanism of the
constrained-conservative-states prior work [15].  A constraint pins named
state bits to concrete values whenever a conservative state is formed;
this encodes facts the designer knows about the application (e.g. "the
mode register is always 0 in this deployment") that merging would
otherwise erase into ``X``.

File format, one constraint per line::

    # comments allowed
    net  <net_name>   <0|1>        # pin a state net
    mem  <memory>[<addr>].<bit>  <0|1>   # pin one bit of a memory word
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from ..sim.state import SimState


class ConstraintError(Exception):
    """Malformed constraint text or unknown signal."""


@dataclass(frozen=True)
class NetConstraint:
    net_name: str
    value: int


@dataclass(frozen=True)
class MemConstraint:
    memory: str
    address: int
    bit: int
    value: int


_MEM_RE = re.compile(r"^(\w+)\[(\d+)\]\.(\d+)$")


def parse_constraints(text: str) -> List[Union[NetConstraint,
                                               MemConstraint]]:
    """Parse the constraint-file format described in the module docs."""
    out: List[Union[NetConstraint, MemConstraint]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ConstraintError(
                f"line {lineno}: expected 3 fields, got {len(parts)}")
        kind, target, value_text = parts
        if value_text not in ("0", "1"):
            raise ConstraintError(
                f"line {lineno}: value must be 0 or 1, got {value_text!r}")
        value = int(value_text)
        if kind == "net":
            out.append(NetConstraint(target, value))
        elif kind == "mem":
            m = _MEM_RE.match(target)
            if not m:
                raise ConstraintError(
                    f"line {lineno}: bad memory target {target!r} "
                    f"(want name[addr].bit)")
            out.append(MemConstraint(m.group(1), int(m.group(2)),
                                     int(m.group(3)), value))
        else:
            raise ConstraintError(
                f"line {lineno}: unknown constraint kind {kind!r}")
    return out


def load_constraints(path: Union[str, Path]):
    return parse_constraints(Path(path).read_text())


class ConstraintSet:
    """Compiled constraints, applied to states as they enter the CSM.

    ``net_positions`` maps state-net names to positions inside
    ``SimState.net_val`` (the owning engine provides it, see
    :meth:`repro.coanalysis.engine.CoAnalysisEngine`).
    """

    def __init__(self,
                 constraints: Sequence[Union[NetConstraint, MemConstraint]],
                 net_positions: Dict[str, int]):
        self._net_fixes: List[Tuple[int, int]] = []
        self._mem_fixes: List[MemConstraint] = []
        for c in constraints:
            if isinstance(c, NetConstraint):
                if c.net_name not in net_positions:
                    raise ConstraintError(
                        f"constraint names unknown state net "
                        f"{c.net_name!r}")
                self._net_fixes.append((net_positions[c.net_name], c.value))
            else:
                self._mem_fixes.append(c)

    def __len__(self) -> int:
        return len(self._net_fixes) + len(self._mem_fixes)

    def canonical_lines(self) -> List[str]:
        """Sorted canonical form (feeds the CSM config fingerprint)."""
        lines = [f"net:{pos}={value}"
                 for pos, value in sorted(self._net_fixes)]
        lines += sorted(f"mem:{c.memory}[{c.address}].{c.bit}={c.value}"
                        for c in self._mem_fixes)
        return lines

    def apply(self, state: SimState) -> SimState:
        """Pin constrained bits in ``state`` (in place) and return it."""
        for pos, value in self._net_fixes:
            state.net_val[pos] = bool(value)
            state.net_known[pos] = True
        for c in self._mem_fixes:
            if c.memory not in state.memories:
                raise ConstraintError(
                    f"constraint names unknown memory {c.memory!r}")
            val, known = state.memories[c.memory]
            if not (0 <= c.address < val.shape[0] and
                    0 <= c.bit < val.shape[1]):
                raise ConstraintError(
                    f"constraint {c} out of range for memory shape "
                    f"{val.shape}")
            val[c.address, c.bit] = bool(c.value)
            known[c.address, c.bit] = True
        return state
