"""The dr5 ISA: a RISC-V RV32E-flavoured subset (DarkRISCV model).

Captures the two dr5 properties the paper's results depend on:

* conditional branches compare two full-width register operands (the
  datapath computes ``rs1 - rs2`` and resolves from the wide difference,
  not from 1-bit flags), and
* **there is no hardware multiplier** -- multiplication is a software
  shift-and-add loop, whose per-bit branches are input-dependent
  (section 5.0.3's explanation for ``mult`` needing >1 path on dr5).

Simplifications vs real RV32E (documented substitutions): 8 registers
(``r0`` hard-wired to zero), word-addressed PC, absolute branch/jump
targets, a compact fixed-field encoding instead of RISC-V's packed
immediates.

Encoding (32-bit words)::

    [31:26] opcode
    [25:23] rs1
    [22:20] rs2
    [19:17] rd
    [10:6]  shamt    (slli / srli)
    [5:0]   funct    (R-type)
    [15:0]  imm16    (I-type, sign-extended; lui takes the high half)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .asm import Assembler, AsmError

OP_RTYPE = 0
OP_ADDI = 1
OP_ANDI = 2
OP_ORI = 3
OP_XORI = 4
OP_SLLI = 5
OP_SRLI = 6
OP_LUI = 7
OP_LW = 8
OP_SW = 9
OP_BEQ = 10
OP_BNE = 11
OP_BLT = 12
OP_BGE = 13
OP_BLTU = 14
OP_BGEU = 15
OP_JAL = 16

F_ADD = 0
F_SUB = 1
F_AND = 2
F_OR = 3
F_XOR = 4
F_SLL = 5
F_SRL = 6
F_SLT = 7
F_SLTU = 8

_R3 = {"add": F_ADD, "sub": F_SUB, "and": F_AND, "or": F_OR, "xor": F_XOR,
       "sll": F_SLL, "srl": F_SRL, "slt": F_SLT, "sltu": F_SLTU}
_IMM = {"addi": OP_ADDI, "andi": OP_ANDI, "ori": OP_ORI, "xori": OP_XORI}
_BR = {"beq": OP_BEQ, "bne": OP_BNE, "blt": OP_BLT, "bge": OP_BGE,
       "bltu": OP_BLTU, "bgeu": OP_BGEU}

BRANCH_OPS = frozenset(_BR.values())


def _enc(op, rs1=0, rs2=0, rd=0, shamt=0, funct=0, imm=0) -> int:
    return ((op << 26) | (rs1 << 23) | (rs2 << 20) | (rd << 17)
            | (shamt << 6) | funct | imm)


class Dr5Assembler(Assembler):
    """Assembler for the dr5 RV32E subset."""

    word_width = 32

    def expand(self, mnemonic: str,
               operands: List[str]) -> List[Tuple[str, List[str]]]:
        if mnemonic == "halt":
            return [("jal", ["r0", "_halt"])]
        if mnemonic == "nop":
            return [("addi", ["r0", "r0", "0"])]
        if mnemonic == "mv":
            return [("addi", [operands[0], operands[1], "0"])]
        if mnemonic == "li":   # li rd, imm32 -> lui + ori
            return [("lui", list(operands)),
                    ("ori", [operands[0], operands[0], operands[1]])]
        if mnemonic == "j":
            return [("jal", ["r0", operands[0]])]
        return [(mnemonic, operands)]

    def encode(self, mnemonic: str, operands: List[str],
               labels: Dict[str, int], address: int) -> int:
        if mnemonic in _R3 and len(operands) == 3 and \
                not operands[2].lstrip("-").isdigit():
            rd = self.parse_reg(operands[0])
            rs1 = self.parse_reg(operands[1])
            rs2 = self.parse_reg(operands[2])
            return _enc(OP_RTYPE, rs1=rs1, rs2=rs2, rd=rd,
                        funct=_R3[mnemonic])
        if mnemonic in _IMM:
            rd = self.parse_reg(operands[0])
            rs1 = self.parse_reg(operands[1])
            value = self.parse_int(operands[2], labels)
            if mnemonic == "addi":
                imm = self.check_range(value, 16, signed=True,
                                       what="immediate")
            else:
                imm = value & 0xFFFF
            return _enc(_IMM[mnemonic], rs1=rs1, rd=rd, imm=imm)
        if mnemonic in ("slli", "srli"):
            rd = self.parse_reg(operands[0])
            rs1 = self.parse_reg(operands[1])
            shamt = self.check_range(self.parse_int(operands[2], labels),
                                     5, signed=False, what="shamt")
            op = OP_SLLI if mnemonic == "slli" else OP_SRLI
            return _enc(op, rs1=rs1, rd=rd, shamt=shamt)
        if mnemonic == "lui":
            rd = self.parse_reg(operands[0])
            imm = self.parse_int(operands[1], labels)
            return _enc(OP_LUI, rd=rd, imm=(imm >> 16) & 0xFFFF)
        if mnemonic == "lw":
            rd = self.parse_reg(operands[0])
            imm_text, base = self.parse_mem_operand(operands[1])
            rs1 = self.parse_reg(base)
            imm = self.check_range(self.parse_int(imm_text, labels), 16,
                                   signed=True, what="offset")
            return _enc(OP_LW, rs1=rs1, rd=rd, imm=imm)
        if mnemonic == "sw":
            rs2 = self.parse_reg(operands[0])
            imm_text, base = self.parse_mem_operand(operands[1])
            rs1 = self.parse_reg(base)
            imm = self.check_range(self.parse_int(imm_text, labels), 16,
                                   signed=True, what="offset")
            return _enc(OP_SW, rs1=rs1, rs2=rs2, imm=imm)
        if mnemonic in _BR:
            rs1 = self.parse_reg(operands[0])
            rs2 = self.parse_reg(operands[1])
            addr = self.check_range(self.parse_int(operands[2], labels),
                                    16, signed=False, what="target")
            return _enc(_BR[mnemonic], rs1=rs1, rs2=rs2, imm=addr)
        if mnemonic == "jal":
            rd = self.parse_reg(operands[0])
            addr = self.check_range(self.parse_int(operands[1], labels),
                                    16, signed=False, what="target")
            return _enc(OP_JAL, rd=rd, imm=addr)
        raise AsmError(f"unknown mnemonic {mnemonic!r}")
