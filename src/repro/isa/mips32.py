"""The bm32 ISA: a MIPS32 subset (Roth/John/Lee teaching processor).

Captures the MIPS property driving the paper's path-count results:
**comparisons are subtractions whose full-width result lands in a general
register**, and conditional branches test that register (``subu t, a, b``
followed by ``beq/bne t, r0``).  The hardware multiplier (``mult`` +
``mflo/mfhi``) is present, so the ``mult`` benchmark needs no
data-dependent control flow.

Simplifications vs real MIPS (documented substitutions): 8 registers
(``r0`` hard-wired to zero), word-addressed PC, branch/jump targets are
absolute word addresses, no delay slots.

Encoding (32-bit words)::

    [31:26] opcode          R-type opcode = 0
    [25:23] rs
    [22:20] rt
    [19:17] rd              (R-type)
    [10:6]  shamt           (sll / srl)
    [5:0]   funct           (R-type)
    [15:0]  imm16           (I-type; sign- or zero-extended per op)
    [25:0]  addr26          (j)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .asm import Assembler, AsmError

OP_RTYPE = 0x00
OP_J = 0x02
OP_BEQ = 0x04
OP_BNE = 0x05
OP_ADDIU = 0x09
OP_ANDI = 0x0C
OP_ORI = 0x0D
OP_XORI = 0x0E
OP_LUI = 0x0F
OP_LW = 0x23
OP_SW = 0x2B

F_SLL = 0x00
F_SRL = 0x02
F_MFHI = 0x10
F_MFLO = 0x12
F_MULT = 0x18
F_ADDU = 0x21
F_SUBU = 0x23
F_AND = 0x24
F_OR = 0x25
F_XOR = 0x26
F_SLT = 0x2A
F_SLTU = 0x2B

_R3 = {"addu": F_ADDU, "subu": F_SUBU, "and": F_AND, "or": F_OR,
       "xor": F_XOR, "slt": F_SLT, "sltu": F_SLTU}
_IMM = {"addiu": (OP_ADDIU, True), "andi": (OP_ANDI, False),
        "ori": (OP_ORI, False), "xori": (OP_XORI, False)}


def _r(op=0, rs=0, rt=0, rd=0, shamt=0, funct=0) -> int:
    return ((op << 26) | (rs << 23) | (rt << 20) | (rd << 17)
            | (shamt << 6) | funct)


class Bm32Assembler(Assembler):
    """Assembler for the bm32 MIPS32 subset."""

    word_width = 32

    def expand(self, mnemonic: str,
               operands: List[str]) -> List[Tuple[str, List[str]]]:
        if mnemonic == "halt":
            return [("j", ["_halt"])]
        if mnemonic == "nop":
            return [("sll", ["r0", "r0", "0"])]
        if mnemonic == "move":
            return [("addu", [operands[0], operands[1], "r0"])]
        if mnemonic == "li":   # li rt, imm32 -> lui + ori
            return [("lui", list(operands)), ("ori",
                    [operands[0], operands[0], operands[1]])]
        return [(mnemonic, operands)]

    def encode(self, mnemonic: str, operands: List[str],
               labels: Dict[str, int], address: int) -> int:
        if mnemonic in _R3:
            rd = self.parse_reg(operands[0])
            rs = self.parse_reg(operands[1])
            rt = self.parse_reg(operands[2])
            return _r(rs=rs, rt=rt, rd=rd, funct=_R3[mnemonic])
        if mnemonic in ("sll", "srl"):
            rd = self.parse_reg(operands[0])
            rt = self.parse_reg(operands[1])
            shamt = self.check_range(self.parse_int(operands[2], labels),
                                     5, signed=False, what="shamt")
            funct = F_SLL if mnemonic == "sll" else F_SRL
            return _r(rt=rt, rd=rd, shamt=shamt, funct=funct)
        if mnemonic == "mult":
            rs = self.parse_reg(operands[0])
            rt = self.parse_reg(operands[1])
            return _r(rs=rs, rt=rt, funct=F_MULT)
        if mnemonic in ("mflo", "mfhi"):
            rd = self.parse_reg(operands[0])
            funct = F_MFLO if mnemonic == "mflo" else F_MFHI
            return _r(rd=rd, funct=funct)
        if mnemonic in _IMM:
            op, signed = _IMM[mnemonic]
            rt = self.parse_reg(operands[0])
            rs = self.parse_reg(operands[1])
            value = self.parse_int(operands[2], labels)
            if signed:
                imm = self.check_range(value, 16, signed=True,
                                       what="immediate")
            else:
                imm = value & 0xFFFF   # logical imms take the low half
                                       # (lets `li` expand to lui+ori)
            return (op << 26) | (rs << 23) | (rt << 20) | imm
        if mnemonic == "lui":
            rt = self.parse_reg(operands[0])
            imm = self.parse_int(operands[1], labels)
            return (OP_LUI << 26) | (rt << 20) | ((imm >> 16) & 0xFFFF)
        if mnemonic in ("lw", "sw"):
            op = OP_LW if mnemonic == "lw" else OP_SW
            rt = self.parse_reg(operands[0])
            imm_text, base = self.parse_mem_operand(operands[1])
            rs = self.parse_reg(base)
            imm = self.check_range(self.parse_int(imm_text, labels), 16,
                                   signed=True, what="offset")
            return (op << 26) | (rs << 23) | (rt << 20) | imm
        if mnemonic in ("beq", "bne"):
            op = OP_BEQ if mnemonic == "beq" else OP_BNE
            rs = self.parse_reg(operands[0])
            rt = self.parse_reg(operands[1])
            addr = self.check_range(self.parse_int(operands[2], labels),
                                    16, signed=False, what="target")
            return (op << 26) | (rs << 23) | (rt << 20) | addr
        if mnemonic == "j":
            addr = self.check_range(self.parse_int(operands[0], labels),
                                    26, signed=False, what="target")
            return (OP_J << 26) | addr
        raise AsmError(f"unknown mnemonic {mnemonic!r}")
