"""Generic two-pass assembler framework.

Each processor model ships a tiny assembler (subclass of
:class:`Assembler`) so the six benchmark applications can be written as
readable assembly, assembled to machine words, and loaded into program
memory -- standing in for the GCC/TI toolchains of the paper's testbed.

Syntax (shared across ISAs)::

    ; or # start a comment
    label:              ; define a label at the current address
    .org 16             ; move the location counter
    .word 0x1234        ; emit a literal data word
    op a, b, c          ; one instruction per line

Operands may be registers (ISA-specific), decimal/hex immediates, or
label references.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple


class AsmError(Exception):
    """Assembly-time failure, annotated with the offending line."""


@dataclass
class Program:
    """An assembled application binary."""

    name: str
    words: List[int]
    labels: Dict[str, int]
    word_width: int

    @property
    def size(self) -> int:
        return len(self.words)

    def label(self, name: str) -> int:
        try:
            return self.labels[name]
        except KeyError:
            raise AsmError(f"program {self.name!r} has no label {name!r}") \
                from None

    @property
    def halt_address(self) -> int:
        """Address of the conventional ``_halt`` self-loop."""
        return self.label("_halt")


@dataclass
class _Line:
    number: int
    text: str
    address: int
    mnemonic: str
    operands: List[str]


class Assembler:
    """Two-pass assembler; subclasses provide the instruction encoder."""

    #: machine word width in bits
    word_width: int = 16

    def assemble(self, source: str, name: str = "program") -> Program:
        lines = self._first_pass(source)
        labels = self._labels
        words: Dict[int, int] = {}
        for line in lines:
            try:
                if line.mnemonic == ".word":
                    value = self.parse_int(line.operands[0], labels)
                else:
                    value = self.encode(line.mnemonic, line.operands,
                                        labels, line.address)
            except AsmError as exc:
                raise AsmError(
                    f"line {line.number} ({line.text!r}): {exc}") from None
            mask = (1 << self.word_width) - 1
            words[line.address] = value & mask
        size = max(words) + 1 if words else 0
        image = [words.get(i, 0) for i in range(size)]
        return Program(name, image, dict(labels), self.word_width)

    # -- pass 1 ------------------------------------------------------------
    def _first_pass(self, source: str) -> List[_Line]:
        self._labels: Dict[str, int] = {}
        out: List[_Line] = []
        address = 0
        for number, raw in enumerate(source.splitlines(), start=1):
            text = re.split(r"[;#]", raw, 1)[0].strip()
            if not text:
                continue
            while True:
                m = re.match(r"^([A-Za-z_]\w*):\s*(.*)$", text)
                if not m:
                    break
                label = m.group(1)
                if label in self._labels:
                    raise AsmError(
                        f"line {number}: duplicate label {label!r}")
                self._labels[label] = address
                text = m.group(2).strip()
            if not text:
                continue
            if text.startswith(".org"):
                address = self.parse_int(text.split()[1], {})
                continue
            parts = text.split(None, 1)
            mnemonic = parts[0].lower()
            operands = [op.strip() for op in parts[1].split(",")] \
                if len(parts) > 1 else []
            for m, ops in self.expand(mnemonic, operands):
                out.append(_Line(number, text, address, m, ops))
                address += 1
        return out

    def expand(self, mnemonic: str,
               operands: List[str]) -> List[Tuple[str, List[str]]]:
        """Pseudo-instruction hook: return the real instructions (each
        occupying one word) for ``mnemonic``.  Default: no expansion."""
        return [(mnemonic, operands)]

    # -- helpers for encoders ----------------------------------------------
    @staticmethod
    def parse_int(text: str, labels: Dict[str, int]) -> int:
        text = text.strip()
        if text in labels:
            return labels[text]
        try:
            return int(text, 0)
        except ValueError:
            raise AsmError(f"cannot parse operand {text!r}") from None

    def parse_reg(self, text: str) -> int:
        m = re.match(r"^r(\d+)$", text.strip(), re.IGNORECASE)
        if not m:
            raise AsmError(f"expected register, got {text!r}")
        return int(m.group(1))

    @staticmethod
    def parse_mem_operand(text: str) -> Tuple[str, str]:
        """Split ``imm(reg)`` into (imm_text, reg_text)."""
        m = re.match(r"^(.*)\((\w+)\)$", text.strip())
        if not m:
            raise AsmError(f"expected imm(reg) operand, got {text!r}")
        return (m.group(1).strip() or "0", m.group(2))

    @staticmethod
    def check_range(value: int, bits: int, signed: bool,
                    what: str) -> int:
        if signed:
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        else:
            lo, hi = 0, (1 << bits) - 1
        if not lo <= value <= hi:
            raise AsmError(
                f"{what} {value} out of {bits}-bit "
                f"{'signed' if signed else 'unsigned'} range")
        return value & ((1 << bits) - 1)

    # -- subclass API ---------------------------------------------------------
    def encode(self, mnemonic: str, operands: List[str],
               labels: Dict[str, int], address: int) -> int:
        raise NotImplementedError
