"""ISA definitions and assemblers for the three processor models."""

from .asm import Assembler, AsmError, Program
from .mips32 import Bm32Assembler
from .msp430 import Msp430Assembler
from .rv32e import Dr5Assembler

ASSEMBLERS = {
    "omsp430": Msp430Assembler,
    "bm32": Bm32Assembler,
    "dr5": Dr5Assembler,
}

__all__ = ["Assembler", "AsmError", "Program",
           "Msp430Assembler", "Bm32Assembler", "Dr5Assembler",
           "ASSEMBLERS"]
