"""The m16 ISA: the MSP430-flavoured instruction set of the omsp430 model.

A 16-bit, flag-based ISA capturing the MSP430 property the paper's
analysis hinges on: **compare instructions write only the 1-bit N/Z/C/V
status flags**, and conditional jumps resolve from those flags (section
5.0.3).  Eight general registers ``r0..r7``; PC and SR are separate
architectural registers, as on the real part.

Encoding (16-bit words, word-addressed PC)::

    [15:12] opcode
    [11:9]  rd / cond / subop
    [8:6]   rs
    [7:0]   imm8   (MOVI / MOVHI)
    [5:0]   imm6   (LD / ST offset, signed)
    [9:0]   addr10 (JMP)
    [8:0]   addr9  (JCC)

Memory-mapped peripherals (data addresses): hardware multiplier,
GPIO, watchdog, TimerA -- see :mod:`repro.processors.omsp430`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .asm import Assembler, AsmError

# -- opcodes ------------------------------------------------------------------
OP_MOV = 0x0
OP_ADD = 0x1
OP_SUB = 0x2
OP_CMP = 0x3
OP_AND = 0x4
OP_BIS = 0x5
OP_XOR = 0x6
OP_MOVI = 0x7
OP_MOVHI = 0x8
OP_LD = 0x9
OP_ST = 0xA
OP_JMP = 0xB
OP_JCC = 0xC
OP_SHIFT = 0xD
OP_JRR = 0xE      # register-indirect jump: PC <- rd (ISR return)

# -- JCC condition codes (resolved from N/Z/C/V) --------------------------------
COND_JEQ = 0   # Z
COND_JNE = 1   # !Z
COND_JC = 2    # C
COND_JNC = 3   # !C
COND_JN = 4    # N
COND_JGE = 5   # N == V
COND_JL = 6    # N != V

# -- SHIFT subops ---------------------------------------------------------------
SH_RRA = 0     # arithmetic right shift by one (MSP430 RRA)
SH_SRL = 1     # logical right shift by one

#: memory-mapped peripheral registers.  They live in their own address
#: page (0x0100-0x010F), disjoint from the data RAM page, as on the real
#: openMSP430 where peripheral and data spaces do not alias.
PERIPH_BASE = 0x100
MPY_OP1 = PERIPH_BASE + 0x0
MPY_OP2 = PERIPH_BASE + 0x1
MPY_RESLO = PERIPH_BASE + 0x2
MPY_RESHI = PERIPH_BASE + 0x3
GPIO_OUT = PERIPH_BASE + 0x4
GPIO_IN = PERIPH_BASE + 0x5
WDT_CTL = PERIPH_BASE + 0x6
WDT_CNT = PERIPH_BASE + 0x7
TA_CTL = PERIPH_BASE + 0x8
TA_CNT = PERIPH_BASE + 0x9
TA_CCR = PERIPH_BASE + 0xA
IE_CTL = PERIPH_BASE + 0xB   # bit0 = GIE (global interrupt enable)
IVEC = PERIPH_BASE + 0xC     # interrupt vector (ISR entry address)

_TWO_REG = {"mov": OP_MOV, "add": OP_ADD, "sub": OP_SUB, "cmp": OP_CMP,
            "and": OP_AND, "bis": OP_BIS, "xor": OP_XOR}
_JCC = {"jeq": COND_JEQ, "jne": COND_JNE, "jc": COND_JC, "jnc": COND_JNC,
        "jn": COND_JN, "jge": COND_JGE, "jl": COND_JL}
_SHIFT = {"rra": SH_RRA, "srl": SH_SRL}


class Msp430Assembler(Assembler):
    """Assembler for the m16 ISA."""

    word_width = 16

    def expand(self, mnemonic: str,
               operands: List[str]) -> List[Tuple[str, List[str]]]:
        if mnemonic == "li":          # li rd, imm16  ->  movi + movhi
            if len(operands) != 2:
                raise AsmError("li takes rd, imm")
            return [("movi", list(operands)), ("movhi", list(operands))]
        if mnemonic == "halt":        # parked self-loop, labelled by caller
            return [("jmp", ["_halt"])]
        if mnemonic == "nop":
            return [("mov", ["r0", "r0"])]
        if mnemonic == "reti":
            # the interrupt hardware parks the return address in r7
            return [("jrr", ["r7"])]
        if mnemonic == "clr":
            # not xor rd, rd: registers power up as X and unlabeled
            # X ^ X stays X (Fig. 4 right), so clear with an immediate
            return [("movi", [operands[0], "0"])]
        return [(mnemonic, operands)]

    def encode(self, mnemonic: str, operands: List[str],
               labels: Dict[str, int], address: int) -> int:
        if mnemonic in _TWO_REG:
            rd = self.parse_reg(operands[0])
            rs = self.parse_reg(operands[1])
            return (_TWO_REG[mnemonic] << 12) | (rd << 9) | (rs << 6)
        if mnemonic == "movi":
            rd = self.parse_reg(operands[0])
            imm = self.parse_int(operands[1], labels)
            return (OP_MOVI << 12) | (rd << 9) | (imm & 0xFF)
        if mnemonic == "movhi":
            rd = self.parse_reg(operands[0])
            imm = self.parse_int(operands[1], labels)
            return (OP_MOVHI << 12) | (rd << 9) | ((imm >> 8) & 0xFF)
        if mnemonic in ("ld", "st"):
            op = OP_LD if mnemonic == "ld" else OP_ST
            rd = self.parse_reg(operands[0])
            imm_text, base = self.parse_mem_operand(operands[1])
            rs = self.parse_reg(base)
            imm = self.check_range(self.parse_int(imm_text, labels), 6,
                                   signed=True, what="offset")
            return (op << 12) | (rd << 9) | (rs << 6) | imm
        if mnemonic == "jmp":
            addr = self.check_range(self.parse_int(operands[0], labels),
                                    10, signed=False, what="target")
            return (OP_JMP << 12) | addr
        if mnemonic in _JCC:
            addr = self.check_range(self.parse_int(operands[0], labels),
                                    9, signed=False, what="target")
            return (OP_JCC << 12) | (_JCC[mnemonic] << 9) | addr
        if mnemonic in _SHIFT:
            rd = self.parse_reg(operands[0])
            return (OP_SHIFT << 12) | (_SHIFT[mnemonic] << 6) | (rd << 9)
        if mnemonic == "jrr":
            rd = self.parse_reg(operands[0])
            return (OP_JRR << 12) | (rd << 9)
        raise AsmError(f"unknown mnemonic {mnemonic!r}")
