"""Disassemblers for the three ISAs.

The inverse of the assemblers: used by the coverage analysis to report
which *instructions* (not just addresses) an application can reach — the
input to reduced-ISA hardware generation [1] — and by the ``disasm`` CLI
command for debugging assembled images.
"""

from __future__ import annotations

from typing import Dict, List

from . import mips32, msp430, rv32e


def _sx(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


# -- msp430 (m16) ------------------------------------------------------------

_MSP_TWO_REG = {v: k for k, v in {
    "mov": msp430.OP_MOV, "add": msp430.OP_ADD, "sub": msp430.OP_SUB,
    "cmp": msp430.OP_CMP, "and": msp430.OP_AND, "bis": msp430.OP_BIS,
    "xor": msp430.OP_XOR}.items()}
_MSP_JCC = {msp430.COND_JEQ: "jeq", msp430.COND_JNE: "jne",
            msp430.COND_JC: "jc", msp430.COND_JNC: "jnc",
            msp430.COND_JN: "jn", msp430.COND_JGE: "jge",
            msp430.COND_JL: "jl"}
_MSP_SHIFT = {msp430.SH_RRA: "rra", msp430.SH_SRL: "srl"}


def disasm_msp430(word: int) -> str:
    op = (word >> 12) & 0xF
    rd = (word >> 9) & 7
    rs = (word >> 6) & 7
    if op in _MSP_TWO_REG:
        return f"{_MSP_TWO_REG[op]} r{rd}, r{rs}"
    if op == msp430.OP_MOVI:
        return f"movi r{rd}, {_sx(word & 0xFF, 8)}"
    if op == msp430.OP_MOVHI:
        return f"movhi r{rd}, {(word & 0xFF) << 8:#x}"
    if op == msp430.OP_LD:
        return f"ld r{rd}, {_sx(word & 0x3F, 6)}(r{rs})"
    if op == msp430.OP_ST:
        return f"st r{rd}, {_sx(word & 0x3F, 6)}(r{rs})"
    if op == msp430.OP_JMP:
        return f"jmp {word & 0x3FF}"
    if op == msp430.OP_JCC:
        cond = (word >> 9) & 7
        return f"{_MSP_JCC.get(cond, f'jcc?{cond}')} {word & 0x1FF}"
    if op == msp430.OP_SHIFT:
        return f"{_MSP_SHIFT.get(rs, f'sh?{rs}')} r{rd}"
    if op == msp430.OP_JRR:
        return f"jrr r{rd}"
    return f".word {word:#06x}"


# -- bm32 (MIPS32 subset) -----------------------------------------------------

_BM_FUNCT = {mips32.F_ADDU: "addu", mips32.F_SUBU: "subu",
             mips32.F_AND: "and", mips32.F_OR: "or", mips32.F_XOR: "xor",
             mips32.F_SLT: "slt", mips32.F_SLTU: "sltu"}
_BM_IMM = {mips32.OP_ADDIU: ("addiu", True), mips32.OP_ANDI: ("andi", False),
           mips32.OP_ORI: ("ori", False), mips32.OP_XORI: ("xori", False)}


def disasm_bm32(word: int) -> str:
    op = (word >> 26) & 0x3F
    rs = (word >> 23) & 7
    rt = (word >> 20) & 7
    rd = (word >> 17) & 7
    shamt = (word >> 6) & 0x1F
    funct = word & 0x3F
    imm = word & 0xFFFF
    if op == mips32.OP_RTYPE:
        if funct in _BM_FUNCT:
            return f"{_BM_FUNCT[funct]} r{rd}, r{rs}, r{rt}"
        if funct == mips32.F_SLL:
            return f"sll r{rd}, r{rt}, {shamt}"
        if funct == mips32.F_SRL:
            return f"srl r{rd}, r{rt}, {shamt}"
        if funct == mips32.F_MULT:
            return f"mult r{rs}, r{rt}"
        if funct == mips32.F_MFLO:
            return f"mflo r{rd}"
        if funct == mips32.F_MFHI:
            return f"mfhi r{rd}"
        return f".word {word:#010x}"
    if op in _BM_IMM:
        name, signed = _BM_IMM[op]
        value = _sx(imm, 16) if signed else imm
        return f"{name} r{rt}, r{rs}, {value}"
    if op == mips32.OP_LUI:
        return f"lui r{rt}, {imm << 16:#x}"
    if op == mips32.OP_LW:
        return f"lw r{rt}, {_sx(imm, 16)}(r{rs})"
    if op == mips32.OP_SW:
        return f"sw r{rt}, {_sx(imm, 16)}(r{rs})"
    if op == mips32.OP_BEQ:
        return f"beq r{rs}, r{rt}, {imm}"
    if op == mips32.OP_BNE:
        return f"bne r{rs}, r{rt}, {imm}"
    if op == mips32.OP_J:
        return f"j {word & 0x3FFFFFF}"
    return f".word {word:#010x}"


# -- dr5 (RV32E subset) -------------------------------------------------------

_DR_FUNCT = {rv32e.F_ADD: "add", rv32e.F_SUB: "sub", rv32e.F_AND: "and",
             rv32e.F_OR: "or", rv32e.F_XOR: "xor", rv32e.F_SLL: "sll",
             rv32e.F_SRL: "srl", rv32e.F_SLT: "slt", rv32e.F_SLTU: "sltu"}
_DR_IMM = {rv32e.OP_ADDI: ("addi", True), rv32e.OP_ANDI: ("andi", False),
           rv32e.OP_ORI: ("ori", False), rv32e.OP_XORI: ("xori", False)}
_DR_BR = {rv32e.OP_BEQ: "beq", rv32e.OP_BNE: "bne", rv32e.OP_BLT: "blt",
          rv32e.OP_BGE: "bge", rv32e.OP_BLTU: "bltu",
          rv32e.OP_BGEU: "bgeu"}


def disasm_dr5(word: int) -> str:
    op = (word >> 26) & 0x3F
    rs1 = (word >> 23) & 7
    rs2 = (word >> 20) & 7
    rd = (word >> 17) & 7
    shamt = (word >> 6) & 0x1F
    funct = word & 0x3F
    imm = word & 0xFFFF
    if op == rv32e.OP_RTYPE:
        name = _DR_FUNCT.get(funct)
        if name:
            return f"{name} r{rd}, r{rs1}, r{rs2}"
        return f".word {word:#010x}"
    if op in _DR_IMM:
        name, signed = _DR_IMM[op]
        return f"{name} r{rd}, r{rs1}, {_sx(imm, 16) if signed else imm}"
    if op == rv32e.OP_SLLI:
        return f"slli r{rd}, r{rs1}, {shamt}"
    if op == rv32e.OP_SRLI:
        return f"srli r{rd}, r{rs1}, {shamt}"
    if op == rv32e.OP_LUI:
        return f"lui r{rd}, {imm << 16:#x}"
    if op == rv32e.OP_LW:
        return f"lw r{rd}, {_sx(imm, 16)}(r{rs1})"
    if op == rv32e.OP_SW:
        return f"sw r{rs2}, {_sx(imm, 16)}(r{rs1})"
    if op in _DR_BR:
        return f"{_DR_BR[op]} r{rs1}, r{rs2}, {imm}"
    if op == rv32e.OP_JAL:
        return f"jal r{rd}, {imm}"
    return f".word {word:#010x}"


DISASSEMBLERS = {
    "omsp430": disasm_msp430,
    "bm32": disasm_bm32,
    "dr5": disasm_dr5,
}


def disassemble(design: str, word: int) -> str:
    try:
        fn = DISASSEMBLERS[design]
    except KeyError:
        raise KeyError(f"no disassembler for {design!r}") from None
    return fn(word)


def mnemonic_of(design: str, word: int) -> str:
    return disassemble(design, word).split()[0]


def disassemble_program(design: str, words: List[int]) -> List[str]:
    return [disassemble(design, w) for w in words]


def mnemonic_histogram(design: str, words: List[int]) -> Dict[str, int]:
    """Opcode usage counts — the raw input to a reduced-ISA report."""
    hist: Dict[str, int] = {}
    for word in words:
        key = mnemonic_of(design, word)
        hist[key] = hist.get(key, 0) + 1
    return hist
