"""Structural Verilog emission and parsing.

The paper's tool consumes placed-and-routed gate-level netlists in Verilog.
We support the matching subset here: one flat module, ``wire``
declarations, and primitive cell instances with named port connections::

    module top (a, b, y);
      input a;
      input b;
      output y;
      wire n1;
      NAND u0 (.A(a), .B(b), .Y(n1));
      NOT  u1 (.A(n1), .Y(y));
    endmodule

Bit-indexed net names like ``pc[3]`` are emitted as Verilog escaped
identifiers (``\\pc[3]``) so netlists round-trip losslessly.
"""

from __future__ import annotations

import re
from typing import Dict, List

from .cells import LIBRARY
from .netlist import Netlist, NetlistError

_PLAIN_ID = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _emit_name(name: str) -> str:
    if _PLAIN_ID.match(name):
        return name
    return "\\" + name + " "


def write_verilog(netlist: Netlist) -> str:
    """Serialize a netlist to structural Verilog text."""
    in_names = [netlist.net_name(i) for i in netlist.inputs]
    out_names = [netlist.net_name(i) for i in netlist.outputs]
    ports = in_names + [n for n in out_names if n not in set(in_names)]
    lines: List[str] = []
    lines.append(f"module {_emit_name(netlist.name)} (")
    lines.append("  " + ",\n  ".join(_emit_name(p) for p in ports))
    lines.append(");")
    for n in in_names:
        lines.append(f"  input {_emit_name(n)};")
    for n in out_names:
        lines.append(f"  output {_emit_name(n)};")
    port_set = set(ports)
    for net in netlist.nets:
        if net.name not in port_set:
            lines.append(f"  wire {_emit_name(net.name)};")
    for gate in netlist.gates:
        cell = LIBRARY[gate.kind]
        conns = [f".{pin}({_emit_name(netlist.net_name(net))})"
                 for pin, net in zip(cell.inputs, gate.inputs)]
        conns.append(f".Y({_emit_name(netlist.net_name(gate.output))})")
        lines.append(
            f"  {gate.kind} {_emit_name(gate.name)} ({', '.join(conns)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_TOKEN = re.compile(
    r"""\\(?P<esc>[^\s]+)\s      # escaped identifier
      | (?P<id>[A-Za-z_][A-Za-z0-9_$\[\]]*)
      | (?P<punct>[().,;])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    text = re.sub(r"//[^\n]*", " ", text)
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        m = _TOKEN.match(text, pos)
        if not m:
            raise NetlistError(f"verilog parse error near {text[pos:pos+20]!r}")
        tokens.append(m.group("esc") or m.group("id") or m.group("punct"))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str:
        return self.tokens[self.pos]

    def next(self) -> str:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise NetlistError(f"expected {token!r}, got {got!r}")

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)


def parse_verilog(text: str) -> Netlist:
    """Parse the structural subset emitted by :func:`write_verilog`."""
    p = _Parser(_tokenize(text))
    p.expect("module")
    netlist = Netlist(p.next())
    p.expect("(")
    while p.peek() != ")":
        p.next()  # port names re-declared below; skip
        if p.peek() == ",":
            p.next()
    p.expect(")")
    p.expect(";")

    pending_inputs: List[str] = []
    pending_outputs: List[str] = []
    instances: List[Dict] = []
    while p.peek() != "endmodule":
        head = p.next()
        if head in ("input", "output", "wire"):
            names = [p.next()]
            while p.peek() == ",":
                p.next()
                names.append(p.next())
            p.expect(";")
            for name in names:
                netlist.get_or_add_net(name)
                if head == "input":
                    pending_inputs.append(name)
                elif head == "output":
                    pending_outputs.append(name)
        elif head in LIBRARY:
            inst_name = p.next()
            p.expect("(")
            conns: Dict[str, str] = {}
            while p.peek() != ")":
                dot = p.next()
                if dot != ".":
                    raise NetlistError(
                        f"instance {inst_name!r}: positional connections "
                        f"are not supported (got {dot!r})")
                pin = p.next()
                p.expect("(")
                conns[pin] = p.next()
                p.expect(")")
                if p.peek() == ",":
                    p.next()
            p.expect(")")
            p.expect(";")
            instances.append(
                {"kind": head, "name": inst_name, "conns": conns})
        else:
            raise NetlistError(f"unexpected token {head!r}")

    for name in pending_inputs:
        netlist.mark_input(netlist.net_index(name))
    for inst in instances:
        cell = LIBRARY[inst["kind"]]
        conns = inst["conns"]
        try:
            out_net = netlist.get_or_add_net(conns["Y"])
        except KeyError:
            raise NetlistError(
                f"instance {inst['name']!r} missing output pin Y") from None
        ins = []
        for pin in cell.inputs:
            if pin not in conns:
                raise NetlistError(
                    f"instance {inst['name']!r} missing pin {pin}")
            ins.append(netlist.get_or_add_net(conns[pin]))
        netlist.add_gate(inst["name"], inst["kind"], ins, out_net)
    for name in pending_outputs:
        netlist.mark_output(netlist.net_index(name))
    return netlist
