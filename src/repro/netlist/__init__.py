"""Gate-level netlist IR, cell library, and Verilog I/O."""

from .cells import (COMB_KINDS, LIBRARY, SEQ_KINDS, TIE_KINDS, CellKind,
                    kind)
from .netlist import Gate, Net, Netlist, NetlistError
from .verilog import parse_verilog, write_verilog

__all__ = [
    "CellKind", "kind", "LIBRARY", "COMB_KINDS", "SEQ_KINDS", "TIE_KINDS",
    "Gate", "Net", "Netlist", "NetlistError",
    "parse_verilog", "write_verilog",
]
