"""Gate-level netlist intermediate representation.

Every tool in this package -- both simulation engines, the co-analysis
engine, the bespoke pruner/re-synthesizer, and the Verilog reader/writer --
operates on :class:`Netlist`.  It is a flat, single-clock-domain gate
network:

* **Nets** are integer-indexed and named.  Each net has at most one driver
  (a gate output or a primary input).
* **Gates** are instances of primitive :mod:`~repro.netlist.cells` kinds.
* Primary inputs/outputs are ordered lists of net indices.

The IR is deliberately flat: the paper's flow simulates *placed-and-routed
gate-level netlists*, which are flat by construction.  Hierarchical designs
are flattened during RTL elaboration (:mod:`repro.rtl.elaborate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .cells import SEQ_KINDS, CellKind, kind as cell_kind


class NetlistError(Exception):
    """Structural problem in a netlist (multiple drivers, comb loop, ...)."""


@dataclass
class Gate:
    """A primitive cell instance.

    Attributes:
        index:  position in :attr:`Netlist.gates`.
        name:   unique instance name.
        kind:   cell kind name (key into the cell library).
        inputs: driven-by net indices, in the kind's pin order.
        output: net index this gate drives.
    """

    index: int
    name: str
    kind: str
    inputs: Tuple[int, ...]
    output: int

    @property
    def is_sequential(self) -> bool:
        return self.kind in SEQ_KINDS

    @property
    def cell(self) -> CellKind:
        return cell_kind(self.kind)


@dataclass
class Net:
    """A single-bit wire."""

    index: int
    name: str
    driver: Optional[int] = None        # gate index, None for PI / floating
    fanout: List[int] = field(default_factory=list)  # gate indices


class Netlist:
    """A flat gate-level design."""

    def __init__(self, name: str):
        self.name = name
        self.nets: List[Net] = []
        self.gates: List[Gate] = []
        self.inputs: List[int] = []      # primary input net indices
        self.outputs: List[int] = []     # primary output net indices
        self._net_by_name: Dict[str, int] = {}
        self._gate_by_name: Dict[str, int] = {}
        self._levels: Optional[List[int]] = None  # cached comb levelization
        #: bumped on every structural edit; compiled-netlist caches key
        #: on (identity, version) so post-compile edits force a recompile
        self._mutation_version = 0

    # -- construction -----------------------------------------------------
    def add_net(self, name: str) -> int:
        """Create a net, returning its index.  Names must be unique."""
        if name in self._net_by_name:
            raise NetlistError(f"duplicate net name {name!r}")
        idx = len(self.nets)
        self.nets.append(Net(idx, name))
        self._net_by_name[name] = idx
        self._levels = None
        self._mutation_version += 1
        return idx

    def get_or_add_net(self, name: str) -> int:
        existing = self._net_by_name.get(name)
        if existing is not None:
            return existing
        return self.add_net(name)

    def add_gate(self, name: str, kind_name: str,
                 inputs: Sequence[int], output: int) -> int:
        """Instantiate a primitive cell.  Returns the gate index."""
        ck = cell_kind(kind_name)
        if len(inputs) != ck.arity:
            raise NetlistError(
                f"gate {name!r}: kind {kind_name} takes {ck.arity} inputs, "
                f"got {len(inputs)}")
        if name in self._gate_by_name:
            raise NetlistError(f"duplicate gate name {name!r}")
        out_net = self.nets[output]
        if out_net.driver is not None:
            raise NetlistError(
                f"net {out_net.name!r} already driven by gate "
                f"{self.gates[out_net.driver].name!r}")
        if output in self.inputs:
            raise NetlistError(
                f"net {out_net.name!r} is a primary input; cannot drive it")
        idx = len(self.gates)
        gate = Gate(idx, name, kind_name, tuple(inputs), output)
        self.gates.append(gate)
        self._gate_by_name[name] = idx
        out_net.driver = idx
        for i in inputs:
            self.nets[i].fanout.append(idx)
        self._levels = None
        self._mutation_version += 1
        return idx

    def mark_input(self, net: int) -> None:
        if self.nets[net].driver is not None:
            raise NetlistError(
                f"net {self.nets[net].name!r} is driven; cannot be an input")
        self.inputs.append(net)
        self._mutation_version += 1

    def mark_output(self, net: int) -> None:
        self.outputs.append(net)
        self._mutation_version += 1

    # -- lookup ------------------------------------------------------------
    def net_index(self, name: str) -> int:
        try:
            return self._net_by_name[name]
        except KeyError:
            raise NetlistError(f"no net named {name!r}") from None

    def net_name(self, index: int) -> str:
        return self.nets[index].name

    def has_net(self, name: str) -> bool:
        return name in self._net_by_name

    def gate_index(self, name: str) -> int:
        try:
            return self._gate_by_name[name]
        except KeyError:
            raise NetlistError(f"no gate named {name!r}") from None

    def find_nets(self, prefix: str) -> List[int]:
        """All net indices whose name starts with ``prefix``, sorted by any
        trailing ``[i]`` bit index then name."""
        hits = [(n.name, n.index) for n in self.nets
                if n.name.startswith(prefix)]

        def sort_key(item: Tuple[str, int]):
            name, _ = item
            tail = name[len(prefix):].lstrip("[")
            if tail.endswith("]") and tail[:-1].isdigit():
                return (0, int(tail[:-1]), name)
            return (1, 0, name)

        return [idx for _, idx in sorted(hits, key=sort_key)]

    def bus(self, prefix: str, width: int) -> List[int]:
        """Net indices ``prefix[0] .. prefix[width-1]``."""
        return [self.net_index(f"{prefix}[{i}]") for i in range(width)]

    # -- derived views -----------------------------------------------------
    @property
    def comb_gates(self) -> List[Gate]:
        return [g for g in self.gates if not g.is_sequential]

    @property
    def seq_gates(self) -> List[Gate]:
        return [g for g in self.gates if g.is_sequential]

    def gate_count(self) -> int:
        return len(self.gates)

    def area(self) -> float:
        return sum(g.cell.area for g in self.gates)

    def stats(self) -> Dict[str, float]:
        by_kind: Dict[str, int] = {}
        for g in self.gates:
            by_kind[g.kind] = by_kind.get(g.kind, 0) + 1
        return {
            "gates": len(self.gates),
            "nets": len(self.nets),
            "flops": len(self.seq_gates),
            "area": round(self.area(), 2),
            **{f"kind:{k}": v for k, v in sorted(by_kind.items())},
        }

    # -- levelization --------------------------------------------------------
    def levelize(self) -> List[int]:
        """Topological level per gate.

        Sequential gates and ties are level 0 (their outputs are sources for
        the combinational phase); a combinational gate's level is one more
        than the max level of its driving gates.  Raises
        :class:`NetlistError` on a combinational cycle.
        """
        if self._levels is not None:
            return self._levels
        levels = [0] * len(self.gates)
        # Kahn's algorithm over combinational edges only.
        indeg = [0] * len(self.gates)
        comb = [not g.is_sequential and g.kind not in ("TIE0", "TIE1")
                for g in self.gates]
        for g in self.gates:
            if not comb[g.index]:
                continue
            for net in g.inputs:
                drv = self.nets[net].driver
                if drv is not None and comb[drv]:
                    indeg[g.index] += 1
        queue = [g.index for g in self.gates
                 if comb[g.index] and indeg[g.index] == 0]
        seen = len(queue)
        head = 0
        while head < len(queue):
            gi = queue[head]
            head += 1
            out_net = self.gates[gi].output
            for succ in self.nets[out_net].fanout:
                if not comb[succ]:
                    continue
                if levels[succ] < levels[gi] + 1:
                    levels[succ] = levels[gi] + 1
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    queue.append(succ)
                    seen += 1
        total_comb = sum(comb)
        if seen != total_comb:
            stuck = [self.gates[i].name for i in range(len(self.gates))
                     if comb[i] and indeg[i] > 0][:5]
            raise NetlistError(
                f"combinational cycle involving gates {stuck} "
                f"({total_comb - seen} gates unresolved)")
        self._levels = levels
        return levels

    def validate(self) -> None:
        """Check structural invariants; raises :class:`NetlistError`."""
        self.levelize()
        for net in self.nets:
            if net.driver is None and net.index not in self.inputs:
                if net.fanout or net.index in self.outputs:
                    raise NetlistError(
                        f"net {net.name!r} is used but has no driver and is "
                        f"not a primary input")

    # -- canonical structure -------------------------------------------------
    def structural_lines(self) -> List[str]:
        """Canonical name-based description of the circuit's structure.

        One sorted line per primary input, primary output, and gate
        (``kind(in_names)->out_name``).  Net and gate *indices*, net
        declaration order, gate instance names, and internal dict
        insertion order do not appear, so two netlists describing the
        same circuit -- built in a different order, re-parsed from
        Verilog, or cloned -- produce identical lines, while any cell or
        connection change produces different ones.  This is the input to
        :func:`repro.store.fingerprint.fingerprint_netlist`.
        """
        lines = sorted(f"input {self.net_name(i)}" for i in set(self.inputs))
        lines += sorted(f"output {self.net_name(i)}"
                        for i in set(self.outputs))
        lines += sorted(
            f"{g.kind}({','.join(self.net_name(i) for i in g.inputs)})"
            f"->{self.net_name(g.output)}"
            for g in self.gates)
        return lines

    # -- rebuilding ----------------------------------------------------------
    def clone(self) -> "Netlist":
        """Deep structural copy."""
        dup = Netlist(self.name)
        for net in self.nets:
            dup.add_net(net.name)
        for net_idx in self.inputs:
            dup.mark_input(net_idx)
        for g in self.gates:
            dup.add_gate(g.name, g.kind, g.inputs, g.output)
        for net_idx in self.outputs:
            dup.mark_output(net_idx)
        return dup
