"""Netlist reporting: composition, fanout, and per-block breakdowns.

Synthesis-style reports a user expects from a netlist tool: cell-kind
histograms, area by functional block (inferred from instance-name
prefixes), and fanout distribution.  Used by the examples and handy when
inspecting what bespoke pruning actually removed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .netlist import Netlist

_PREFIX_RE = re.compile(r"^([A-Za-z]+(?:_[A-Za-z]+)*?)_?\d")


def block_of(instance_name: str) -> str:
    """Functional-block key for an instance (name prefix heuristic)."""
    m = _PREFIX_RE.match(instance_name)
    return m.group(1) if m else instance_name


@dataclass
class NetlistReport:
    """Structured composition report for one netlist."""

    name: str
    gates: int
    flops: int
    nets: int
    area: float
    by_kind: Dict[str, int]
    by_block: Dict[str, Tuple[int, float]]      # block -> (gates, area)
    max_fanout: int
    avg_fanout: float

    def render(self, top_blocks: int = 12) -> str:
        lines = [f"Netlist report: {self.name}",
                 f"  gates {self.gates} (flops {self.flops}), "
                 f"nets {self.nets}, area {self.area:.1f}",
                 f"  fanout: max {self.max_fanout}, "
                 f"avg {self.avg_fanout:.2f}",
                 "  cells:"]
        for kind, count in sorted(self.by_kind.items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"    {kind:<6} {count}")
        lines.append(f"  top blocks by area:")
        ranked = sorted(self.by_block.items(), key=lambda kv: -kv[1][1])
        for block, (count, area) in ranked[:top_blocks]:
            lines.append(f"    {block:<14} {count:>5} gates  "
                         f"{area:>9.1f} area")
        return "\n".join(lines)


def report(netlist: Netlist) -> NetlistReport:
    by_kind: Dict[str, int] = {}
    by_block: Dict[str, List[float]] = {}
    for gate in netlist.gates:
        by_kind[gate.kind] = by_kind.get(gate.kind, 0) + 1
        slot = by_block.setdefault(block_of(gate.name), [0, 0.0])
        slot[0] += 1
        slot[1] += gate.cell.area
    fanouts = [len(n.fanout) for n in netlist.nets]
    return NetlistReport(
        name=netlist.name,
        gates=netlist.gate_count(),
        flops=len(netlist.seq_gates),
        nets=len(netlist.nets),
        area=netlist.area(),
        by_kind=by_kind,
        by_block={k: (int(v[0]), v[1]) for k, v in by_block.items()},
        max_fanout=max(fanouts, default=0),
        avg_fanout=(sum(fanouts) / len(fanouts)) if fanouts else 0.0,
    )


def diff_blocks(before: Netlist, after: Netlist) -> List[Tuple[str, int,
                                                               int]]:
    """Per-block gate counts before vs after (what pruning removed)."""
    rb = report(before).by_block
    ra = report(after).by_block
    out = []
    for block in sorted(set(rb) | set(ra)):
        out.append((block, rb.get(block, (0, 0.0))[0],
                    ra.get(block, (0, 0.0))[0]))
    return out


def diff_kinds(before: Netlist,
               after: Netlist) -> List[Tuple[str, int, int, int]]:
    """Per-cell-kind gate counts before vs after pruning.

    Returns ``(kind, before, after, removed)`` rows, biggest removal
    first.  ``removed`` can be negative: re-synthesis introduces tie
    cells that did not exist in the original.
    """
    rb = report(before).by_kind
    ra = report(after).by_kind
    rows = []
    for kind in set(rb) | set(ra):
        b, a = rb.get(kind, 0), ra.get(kind, 0)
        rows.append((kind, b, a, b - a))
    rows.sort(key=lambda row: (-row[3], row[0]))
    return rows


def pruned_breakdown(before: Netlist, after: Netlist) -> str:
    """Render the per-kind pruning breakdown for the bespoke report."""
    lines = [f"  {'cell':<6} {'before':>7} {'after':>7} {'removed':>8}"]
    for kind, b, a, removed in diff_kinds(before, after):
        lines.append(f"  {kind:<6} {b:>7} {a:>7} {removed:>8}")
    total_b = before.gate_count()
    total_a = after.gate_count()
    lines.append(f"  {'total':<6} {total_b:>7} {total_a:>7} "
                 f"{total_b - total_a:>8}")
    return "\n".join(lines)
