"""Primitive cell library.

A small technology-like library: each cell kind has a pin list and an area
weight (loosely modeled on a 65nm standard-cell library, in units of NAND2
equivalents).  The paper reports *gate counts*; we report both gate count
and area so bespoke reductions can be quoted either way.

Sequential cells:

* ``DFF``   -- positive-edge D flip-flop, pins (D) -> Q.
* ``DFFR``  -- DFF with synchronous active-high reset, pins (D, R) -> Q.
* ``DFFE``  -- DFF with clock-enable, pins (D, E) -> Q.
* ``DFFER`` -- DFF with enable and synchronous reset, pins (D, E, R) -> Q.

All flops share a single implicit clock: the paper's co-analysis is
cycle-accurate on single-clock embedded cores, and a single clock domain
keeps both engines simple and fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class CellKind:
    """Static description of a primitive cell type."""

    name: str
    inputs: Tuple[str, ...]
    area: float
    sequential: bool = False

    @property
    def arity(self) -> int:
        return len(self.inputs)


_KINDS = [
    CellKind("TIE0", (), 0.25),
    CellKind("TIE1", (), 0.25),
    CellKind("BUF", ("A",), 0.75),
    CellKind("NOT", ("A",), 0.5),
    CellKind("AND", ("A", "B"), 1.25),
    CellKind("OR", ("A", "B"), 1.25),
    CellKind("NAND", ("A", "B"), 1.0),
    CellKind("NOR", ("A", "B"), 1.0),
    CellKind("XOR", ("A", "B"), 2.0),
    CellKind("XNOR", ("A", "B"), 2.0),
    CellKind("MUX2", ("D0", "D1", "S"), 2.25),
    CellKind("DFF", ("D",), 4.5, sequential=True),
    CellKind("DFFR", ("D", "R"), 5.0, sequential=True),
    CellKind("DFFE", ("D", "E"), 5.5, sequential=True),
    CellKind("DFFER", ("D", "E", "R"), 6.0, sequential=True),
]

#: Cell kinds by name.
LIBRARY: Dict[str, CellKind] = {k.name: k for k in _KINDS}

#: Kinds evaluated combinationally (everything that is not a flop).
COMB_KINDS = frozenset(k.name for k in _KINDS if not k.sequential)

#: Sequential kinds.
SEQ_KINDS = frozenset(k.name for k in _KINDS if k.sequential)

#: Constant-source kinds.
TIE_KINDS = frozenset({"TIE0", "TIE1"})


def kind(name: str) -> CellKind:
    """Look up a cell kind, raising a helpful error for unknown names."""
    try:
        return LIBRARY[name]
    except KeyError:
        raise KeyError(
            f"unknown cell kind {name!r}; known kinds: "
            f"{sorted(LIBRARY)}") from None
