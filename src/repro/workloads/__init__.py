"""Benchmark applications (Table 1) and target construction helpers."""

from typing import Optional, Tuple

from ..isa import ASSEMBLERS
from ..isa.asm import Program
from ..netlist.netlist import Netlist
from ..processors import BUILDERS, CoreMeta, CoreTarget
from .catalog import (BSEARCH_TABLE, INPUT_BASE, OUT_BASE, TABLE_BASE,
                      THOLD_THRESHOLD, WORKLOAD_ORDER, WORKLOADS, Workload)

_CORE_CACHE = {}


def built_core(design: str) -> Tuple[Netlist, CoreMeta]:
    """Build (and memoize) a processor model by name."""
    if design not in _CORE_CACHE:
        try:
            builder = BUILDERS[design]
        except KeyError:
            raise KeyError(f"unknown design {design!r}; "
                           f"known: {sorted(BUILDERS)}") from None
        _CORE_CACHE[design] = builder()
    return _CORE_CACHE[design]


def assemble_workload(design: str, workload: Workload) -> Program:
    assembler = ASSEMBLERS[design]()
    return assembler.assemble(workload.source_for(design),
                              name=f"{workload.name}-{design}")


def build_target(design: str, workload: Workload,
                 netlist: Optional[Netlist] = None) -> CoreTarget:
    """Assemble the workload for ``design`` and wrap it in a harness.

    Pass ``netlist`` to target a different netlist with the same
    interface (e.g. a bespoke re-synthesis of the core).
    """
    base_netlist, meta = built_core(design)
    program = assemble_workload(design, workload)
    return CoreTarget(netlist if netlist is not None else base_netlist,
                      meta, program,
                      symbolic_ranges=workload.symbolic_ranges,
                      data_init=workload.data_init)


__all__ = [
    "Workload", "WORKLOADS", "WORKLOAD_ORDER",
    "INPUT_BASE", "OUT_BASE", "TABLE_BASE",
    "BSEARCH_TABLE", "THOLD_THRESHOLD",
    "built_core", "assemble_workload", "build_target",
]
