"""The benchmark applications (paper Table 1), one assembly program per
ISA.

All programs share a memory layout:

* ``INPUT_BASE``  (64): application inputs -- set to X for co-analysis;
* ``OUT_BASE``    (96): results;
* ``TABLE_BASE`` (112): constant data (e.g. binSearch's sorted array).

The per-ISA sources deliberately keep the idioms the paper attributes to
each compiler/ISA (section 5.0.3):

* **omsp430**: compares via ``CMP`` writing only N/Z/C/V; conditional
  jumps on flags.  tHold carries *three* data-dependent branches per
  sample (the equality + magnitude pattern the paper observed in the
  compiled binary) vs two elsewhere.
* **bm32**: equality compares via ``subu`` into a temp register followed
  by ``beq/bne`` against ``r0`` -- the full-width compare-result register
  the paper describes; the ``mult`` benchmark uses the hardware
  multiplier.
* **dr5**: two-operand register branches; no multiplier, so ``mult`` is a
  software shift-and-add loop with an input-dependent branch per bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

INPUT_BASE = 64
OUT_BASE = 96
TABLE_BASE = 112

#: binSearch's constant sorted table
BSEARCH_TABLE = [3, 9, 17, 25, 38, 51, 70, 90]
THOLD_THRESHOLD = 100
TEA_ROUNDS = 8
# compact key/delta constants (fit both the 16-bit and the imm-limited
# encodings; the round structure, not the key width, is what matters
# for co-analysis)
TEA_DELTA = 0x37
TEA_K = [0x12, 0x5E, 0x33, 0x49]


@dataclass
class Workload:
    """One benchmark application, portable across the three cores."""

    name: str
    description: str
    sources: Dict[str, str]                 # ISA name -> assembly source
    input_len: int
    cases: List[Dict[int, int]]             # concrete inputs (validation)
    reference: Callable[[List[int], int], Dict[int, int]]
    data_init: Dict[int, int] = field(default_factory=dict)
    out_len: int = 4
    #: optional CSM constraint file text per design (paper section 3.3 /
    #: [15]): facts the designer knows hold on every real execution, used
    #: to stop conservative merging from over-approximating
    constraints: Dict[str, str] = field(default_factory=dict)

    @property
    def symbolic_ranges(self) -> List[Tuple[int, int]]:
        return [(INPUT_BASE, INPUT_BASE + self.input_len)]

    def source_for(self, design: str) -> str:
        try:
            return self.sources[design]
        except KeyError:
            raise KeyError(
                f"workload {self.name!r} has no program for {design!r}") \
                from None

    def case_inputs(self, case: Dict[int, int]) -> List[int]:
        return [case.get(INPUT_BASE + i, 0) for i in range(self.input_len)]

    def expected(self, case: Dict[int, int],
                 word_width: int) -> Dict[int, int]:
        return self.reference(self.case_inputs(case), word_width)


# =============================================================================
# Div -- unsigned integer division (repeated subtraction)
# =============================================================================

_DIV_MSP = """
; unsigned division: out[0] = a / b, out[1] = a % b
    li r1, 64
    ld r2, 0(r1)       ; remainder = dividend
    ld r3, 1(r1)       ; divisor
    clr r4             ; quotient
    movi r5, 1
loop:
    cmp r2, r3         ; C = 1 when remainder >= divisor (no borrow)
    jnc done
    sub r2, r3
    add r4, r5
    jmp loop
done:
    li r6, 96
    st r4, 0(r6)
    st r2, 1(r6)
_halt:
    jmp _halt
"""

_DIV_BM32 = """
    addiu r1, r0, 64
    lw r2, 0(r1)       ; remainder
    lw r3, 1(r1)       ; divisor
    addiu r4, r0, 0    ; quotient
loop:
    sltu r7, r2, r3    ; compare writes a register ...
    bne r7, r0, done   ; ... the branch tests it against r0
    subu r2, r2, r3
    addiu r4, r4, 1
    j loop
done:
    addiu r6, r0, 96
    sw r4, 0(r6)
    sw r2, 1(r6)
_halt:
    j _halt
"""

_DIV_DR5 = """
    addi r1, r0, 64
    lw r2, 0(r1)
    lw r3, 1(r1)
    addi r4, r0, 0
loop:
    bltu r2, r3, done
    sub r2, r2, r3
    addi r4, r4, 1
    j loop
done:
    addi r6, r0, 96
    sw r4, 0(r6)
    sw r2, 1(r6)
_halt:
    j _halt
"""


def _div_ref(inputs: List[int], width: int) -> Dict[int, int]:
    a, b = inputs[0], inputs[1]
    return {OUT_BASE: a // b, OUT_BASE + 1: a % b}


# =============================================================================
# inSort -- in-place insertion sort of 6 words
# =============================================================================

_INSORT_N = 6

_INSORT_MSP = """
; insertion sort of a[0..5] in place at 64
    movi r0, 1         ; constant one
    li r1, 64          ; base
    movi r2, 1         ; i
    movi r6, 6
outer:
    cmp r2, r6
    jc done            ; i >= 6
    mov r3, r1
    add r3, r2         ; &a[i]
    ld r4, 0(r3)       ; key
    mov r5, r3         ; insertion point (&a[j+1])
inner:
    cmp r5, r1
    jeq place          ; j < 0
    ld r7, -1(r5)      ; a[j]
    cmp r7, r4         ; a[j] ? key
    jnc place          ; a[j] < key
    jeq place          ; a[j] == key
    st r7, 0(r5)       ; shift right
    sub r5, r0
    jmp inner
place:
    st r4, 0(r5)
    add r2, r0
    jmp outer
done:
_halt:
    jmp _halt
"""

_INSORT_BM32 = """
    addiu r1, r0, 64
    addiu r2, r0, 1    ; i
    addiu r6, r0, 6
outer:
    subu r7, r2, r6    ; compare-as-subtraction into r7
    beq r7, r0, done
    addu r3, r1, r2    ; &a[i]
    lw r4, 0(r3)       ; key
    addu r5, r3, r0    ; insertion point
inner:
    subu r7, r5, r1
    beq r7, r0, place  ; j < 0
    lw r7, -1(r5)      ; a[j]
    sltu r3, r4, r7    ; key < a[j]  <=>  a[j] > key
    beq r3, r0, place
    sw r7, 0(r5)
    addiu r5, r5, -1
    j inner
place:
    sw r4, 0(r5)
    addiu r2, r2, 1
    j outer
done:
_halt:
    j _halt
"""

_INSORT_DR5 = """
    addi r1, r0, 64
    addi r2, r0, 1
    addi r6, r0, 6
outer:
    beq r2, r6, done
    add r3, r1, r2
    lw r4, 0(r3)
    add r5, r3, r0
inner:
    beq r5, r1, place
    lw r7, -1(r5)
    bgeu r4, r7, place  ; key >= a[j]
    sw r7, 0(r5)
    addi r5, r5, -1
    j inner
place:
    sw r4, 0(r5)
    addi r2, r2, 1
    j outer
done:
_halt:
    j _halt
"""


def _insort_ref(inputs: List[int], width: int) -> Dict[int, int]:
    out = sorted(inputs[:_INSORT_N])
    return {INPUT_BASE + i: v for i, v in enumerate(out)}


def _pin_register(reg: str, value: int, width: int,
                  low_free_bits: int) -> str:
    """Constraint text pinning a register's upper bits to ``value``'s."""
    return "\n".join(
        f"net {reg}[{bit}] {(value >> bit) & 1}"
        for bit in range(low_free_bits, width))


def _insort_constraints(i_reg: str, ptr_reg: str, width: int) -> str:
    """inSort invariants for the CSM (paper section 3.3 / [15]).

    On every real execution the outer index stays in [0, 8) and the
    insertion pointer stays in [INPUT_BASE, INPUT_BASE + 8); without
    these facts, conservative merging lets fictitious forced paths wrap
    the pointer through the whole address space, over-approximating the
    exercisable set (e.g. marking peripherals reachable).
    """
    header = ("# inSort bounds: index in [0,8), insertion pointer in "
              f"[{INPUT_BASE}, {INPUT_BASE + 8})\n")
    return (header
            + _pin_register(i_reg, 0, width, low_free_bits=3) + "\n"
            + _pin_register(ptr_reg, INPUT_BASE, width, low_free_bits=3))


# =============================================================================
# binSearch -- binary search in a constant sorted table of 8
# =============================================================================

_BSEARCH_MSP = """
; search key (in[0]) in table at 112; out[0] = index, 255 if absent
    li r1, 64
    ld r2, 0(r1)       ; key
    li r1, 112         ; table base
    clr r3             ; lo
    movi r4, 7         ; hi
loop:
    cmp r4, r3
    jl notfound        ; hi < lo (signed; values are small)
    mov r5, r3
    add r5, r4
    srl r5             ; mid = (lo + hi) >> 1
    mov r6, r1
    add r6, r5
    ld r7, 0(r6)       ; v = table[mid]
    cmp r7, r2
    jeq found
    jl  golow          ; v < key -> search upper half
    mov r4, r5         ; hi = mid - 1
    movi r6, 1
    sub r4, r6
    jmp loop
golow:
    mov r3, r5
    movi r6, 1
    add r3, r6         ; lo = mid + 1
    jmp loop
found:
    li r1, 96
    st r5, 0(r1)
    jmp _halt
notfound:
    li r5, 255         ; li, not movi: movi sign-extends 0xFF
    li r1, 96
    st r5, 0(r1)
_halt:
    jmp _halt
"""

_BSEARCH_BM32 = """
    addiu r1, r0, 64
    lw r2, 0(r1)       ; key
    addiu r1, r0, 112
    addiu r3, r0, 0    ; lo
    addiu r4, r0, 7    ; hi
loop:
    slt r7, r4, r3     ; hi < lo ?
    bne r7, r0, notfound
    addu r5, r3, r4
    srl r5, r5, 1      ; mid
    addu r6, r1, r5
    lw r6, 0(r6)       ; v
    subu r7, r6, r2    ; compare-as-subtraction
    beq r7, r0, found
    slt r7, r6, r2     ; v < key
    bne r7, r0, golow
    addiu r4, r5, -1   ; hi = mid - 1
    j loop
golow:
    addiu r3, r5, 1    ; lo = mid + 1
    j loop
found:
    addiu r1, r0, 96
    sw r5, 0(r1)
    j _halt
notfound:
    addiu r5, r0, 255
    addiu r1, r0, 96
    sw r5, 0(r1)
_halt:
    j _halt
"""

_BSEARCH_DR5 = """
    addi r1, r0, 64
    lw r2, 0(r1)
    addi r1, r0, 112
    addi r3, r0, 0
    addi r4, r0, 7
loop:
    blt r4, r3, notfound
    add r5, r3, r4
    srli r5, r5, 1
    add r6, r1, r5
    lw r6, 0(r6)
    beq r6, r2, found
    blt r6, r2, golow
    addi r4, r5, -1
    j loop
golow:
    addi r3, r5, 1
    j loop
found:
    addi r1, r0, 96
    sw r5, 0(r1)
    j _halt
notfound:
    addi r5, r0, 255
    addi r1, r0, 96
    sw r5, 0(r1)
_halt:
    j _halt
"""


def _bsearch_ref(inputs: List[int], width: int) -> Dict[int, int]:
    key = inputs[0]
    idx = BSEARCH_TABLE.index(key) if key in BSEARCH_TABLE else 255
    return {OUT_BASE: idx}


# =============================================================================
# tHold -- digital threshold detector over 8 samples
# =============================================================================

_THOLD_N = 8

# The omsp430 binary carries three data-dependent branches per sample
# (jeq + jnc for the threshold test, jnc for the max test) -- the
# paper's explanation for tHold's inverted path-count trend.
_THOLD_MSP = """
; count samples >= 100 (out[0]) and track the max sample (out[1])
    movi r0, 1
    li r1, 64
    clr r2             ; count
    clr r3             ; max
    movi r4, 8         ; remaining samples
    movi r5, 100       ; threshold
loop:
    ld r6, 0(r1)       ; sample
    cmp r6, r5
    jeq count_it       ; sample == threshold   (data branch 1)
    jnc past_count     ; sample <  threshold   (data branch 2)
count_it:
    add r2, r0
past_count:
    cmp r6, r3
    jnc past_max       ; sample < max          (data branch 3)
    mov r3, r6
past_max:
    add r1, r0
    sub r4, r0         ; concrete loop counter
    jne loop
    li r1, 96
    st r2, 0(r1)
    st r3, 1(r1)
_halt:
    jmp _halt
"""

_THOLD_BM32 = """
    addiu r1, r0, 64
    addiu r2, r0, 0    ; count
    addiu r3, r0, 0    ; max
    addiu r4, r0, 8
    addiu r5, r0, 100
loop:
    lw r6, 0(r1)
    sltu r7, r6, r5    ; sample < threshold
    bne r7, r0, past_count          ; (data branch 1)
    addiu r2, r2, 1
past_count:
    sltu r7, r3, r6    ; max < sample
    beq r7, r0, past_max            ; (data branch 2)
    addu r3, r6, r0
past_max:
    addiu r1, r1, 1
    addiu r4, r4, -1
    bne r4, r0, loop   ; concrete counter
    addiu r1, r0, 96
    sw r2, 0(r1)
    sw r3, 1(r1)
_halt:
    j _halt
"""

_THOLD_DR5 = """
    addi r1, r0, 64
    addi r2, r0, 0
    addi r3, r0, 0
    addi r4, r0, 8
    addi r5, r0, 100
loop:
    lw r6, 0(r1)
    bltu r6, r5, past_count         ; (data branch 1)
    addi r2, r2, 1
past_count:
    bgeu r3, r6, past_max           ; (data branch 2)
    add r3, r6, r0
past_max:
    addi r1, r1, 1
    addi r4, r4, -1
    bne r4, r0, loop
    addi r1, r0, 96
    sw r2, 0(r1)
    sw r3, 1(r1)
_halt:
    j _halt
"""


def _thold_ref(inputs: List[int], width: int) -> Dict[int, int]:
    samples = inputs[:_THOLD_N]
    count = sum(1 for s in samples if s >= THOLD_THRESHOLD)
    return {OUT_BASE: count, OUT_BASE + 1: max(samples)}


# =============================================================================
# mult -- unsigned multiplication
# =============================================================================

_MULT_MSP = """
; product of in[0] * in[1] via the memory-mapped hardware multiplier
    li r1, 64
    ld r2, 0(r1)
    ld r3, 1(r1)
    li r4, 256         ; MPY_OP1 (peripheral page)
    st r2, 0(r4)
    st r3, 1(r4)
    ld r5, 2(r4)       ; RESLO
    ld r6, 3(r4)       ; RESHI
    li r7, 96
    st r5, 0(r7)
    st r6, 1(r7)
_halt:
    jmp _halt
"""

_MULT_BM32 = """
    addiu r1, r0, 64
    lw r2, 0(r1)
    lw r3, 1(r1)
    mult r2, r3        ; hardware multiplier, result a cycle later
    nop
    mflo r5
    mfhi r6
    addiu r7, r0, 96
    sw r5, 0(r7)
    sw r6, 1(r7)
_halt:
    j _halt
"""

_MULT_DR5 = """
; software shift-and-add (no hardware multiplier on dr5)
    addi r1, r0, 64
    lw r2, 0(r1)       ; multiplicand
    lw r3, 1(r1)       ; multiplier
    addi r4, r0, 0     ; accumulator
    addi r5, r0, 16    ; bit counter
loop:
    andi r6, r3, 1
    beq r6, r0, skip   ; input-dependent branch per bit
    add r4, r4, r2
skip:
    slli r2, r2, 1
    srli r3, r3, 1
    addi r5, r5, -1
    bne r5, r0, loop
    addi r7, r0, 96
    sw r4, 0(r7)
_halt:
    j _halt
"""


def _mult_ref_msp(inputs: List[int], width: int) -> Dict[int, int]:
    product = inputs[0] * inputs[1]
    mask = (1 << width) - 1
    return {OUT_BASE: product & mask, OUT_BASE + 1: (product >> width) & mask}


# =============================================================================
# tea8 -- TEA-style encryption, 8 rounds, straight-line data flow
# =============================================================================

def _tea_msp_source(rounds: int = TEA_ROUNDS) -> str:
    shl4 = "    add r6, r6\n" * 4
    shr5 = "    srl r6\n" * 5
    round_half = (
        "{load}"
        "{shift}"
        "    movi r0, {kconst}\n"
        "    add r6, r0\n"
        "    movi r0, 1\n"
        "    mov r5, r6\n"          # r5 = shifted + k
        "{load2}"
        "    add r6, r4\n"          # r6 = v_other + sum
        "    xor r5, r6\n"
        "{load3}"
        "{shift2}"
        "    movi r0, {kconst2}\n"
        "    add r6, r0\n"
        "    movi r0, 1\n"
        "    xor r5, r6\n"
        "    add {target}, r5\n")
    half1 = round_half.format(
        load="    mov r6, r3\n", shift=shl4,
        load2="    mov r6, r3\n",
        load3="    mov r6, r3\n", shift2=shr5,
        kconst=TEA_K[0], kconst2=TEA_K[1], target="r2")
    half2 = round_half.format(
        load="    mov r6, r2\n", shift=shl4,
        load2="    mov r6, r2\n",
        load3="    mov r6, r2\n", shift2=shr5,
        kconst=TEA_K[2], kconst2=TEA_K[3], target="r3")
    return f"""
; TEA-style mixing of (in[0], in[1]) over {rounds} rounds
    movi r0, 1
    li r1, 64
    ld r2, 0(r1)       ; v0
    ld r3, 1(r1)       ; v1
    clr r4             ; sum
    movi r7, {rounds}
round:
    movi r6, {TEA_DELTA}
    add r4, r6         ; sum += delta
{half1}
{half2}
    sub r7, r0
    jne round
    li r1, 96
    st r2, 0(r1)
    st r3, 1(r1)
_halt:
    jmp _halt
"""


def _tea_rv_source(addi: str, add: str, slli: str, srli: str,
                   bne_tail: str, store: str,
                   rounds: int = TEA_ROUNDS) -> str:
    half = (
        "    {slli} r5, {src}, 4\n"
        "    {addi} r5, r5, {k0}\n"
        "    {add} r6, {src}, r4\n"
        "    xor r5, r5, r6\n"
        "    {srli} r6, {src}, 5\n"
        "    {addi} r6, r6, {k1}\n"
        "    xor r5, r5, r6\n"
        "    {add} {dst}, {dst}, r5\n")
    half1 = half.format(addi=addi, add=add, slli=slli, srli=srli,
                        src="r3", dst="r2", k0=TEA_K[0], k1=TEA_K[1])
    half2 = half.format(addi=addi, add=add, slli=slli, srli=srli,
                        src="r2", dst="r3", k0=TEA_K[2], k1=TEA_K[3])
    return f"""
    {addi} r1, r0, 64
    lw r2, 0(r1)
    lw r3, 1(r1)
    {addi} r4, r0, 0
    {addi} r7, r0, {rounds}
round:
    {addi} r4, r4, {TEA_DELTA}
{half1}
{half2}
    {addi} r7, r7, -1
    {bne_tail}
    {addi} r1, r0, 96
    {store} r2, 0(r1)
    {store} r3, 1(r1)
_halt:
    j _halt
"""


# bm32's sll/srl and dr5's slli/srli share the operand order
# (dest, source, shamt), so one template serves both.
_TEA_BM32 = _tea_rv_source(
    addi="addiu", add="addu", slli="sll", srli="srl",
    bne_tail="bne r7, r0, round", store="sw",
)

_TEA_DR5 = _tea_rv_source(
    addi="addi", add="add", slli="slli", srli="srli",
    bne_tail="bne r7, r0, round", store="sw",
)


def _make_tea_ref(rounds: int):
    def ref(inputs: List[int], width: int) -> Dict[int, int]:
        mask = (1 << width) - 1
        v0, v1 = inputs[0] & mask, inputs[1] & mask
        total = 0
        for _ in range(rounds):
            total = (total + TEA_DELTA) & mask
            v0 = (v0 + ((((v1 << 4) & mask) + TEA_K[0])
                        ^ ((v1 + total) & mask)
                        ^ ((v1 >> 5) + TEA_K[1]))) & mask
            v1 = (v1 + ((((v0 << 4) & mask) + TEA_K[2])
                        ^ ((v0 + total) & mask)
                        ^ ((v0 >> 5) + TEA_K[3]))) & mask
        return {OUT_BASE: v0, OUT_BASE + 1: v1}
    return ref


_tea_ref = _make_tea_ref(TEA_ROUNDS)


# =============================================================================
# the catalog
# =============================================================================

def _mult_reference(inputs: List[int], width: int) -> Dict[int, int]:
    # dispatched per design in Workload.expected via width: 16 -> msp
    if width == 16:
        return _mult_ref_msp(inputs, width)
    return {OUT_BASE: (inputs[0] * inputs[1]) & 0xFFFFFFFF}


WORKLOADS: Dict[str, Workload] = {}


def _register(w: Workload) -> Workload:
    WORKLOADS[w.name] = w
    return w


DIV = _register(Workload(
    name="Div",
    description="Unsigned integer division",
    sources={"omsp430": _DIV_MSP, "bm32": _DIV_BM32, "dr5": _DIV_DR5},
    input_len=2,
    cases=[{INPUT_BASE: 17, INPUT_BASE + 1: 5},
           {INPUT_BASE: 100, INPUT_BASE + 1: 7},
           {INPUT_BASE: 3, INPUT_BASE + 1: 9}],
    reference=_div_ref,
    out_len=2,
))

INSORT = _register(Workload(
    name="inSort",
    description="in-place insertion sort",
    sources={"omsp430": _INSORT_MSP, "bm32": _INSORT_BM32,
             "dr5": _INSORT_DR5},
    input_len=_INSORT_N,
    cases=[{INPUT_BASE + i: v for i, v in
            enumerate([9, 3, 25, 1, 17, 5])},
           {INPUT_BASE + i: v for i, v in
            enumerate([6, 6, 2, 8, 1, 1])}],
    reference=_insort_ref,
    out_len=0,
    constraints={
        "omsp430": _insort_constraints("r2", "r5", 16),
        "bm32": _insort_constraints("r2", "r5", 32),
        "dr5": _insort_constraints("x2", "x5", 32),
    },
))

BINSEARCH = _register(Workload(
    name="binSearch",
    description="Binary search",
    sources={"omsp430": _BSEARCH_MSP, "bm32": _BSEARCH_BM32,
             "dr5": _BSEARCH_DR5},
    input_len=1,
    cases=[{INPUT_BASE: 25}, {INPUT_BASE: 90}, {INPUT_BASE: 4}],
    reference=_bsearch_ref,
    data_init={TABLE_BASE + i: v for i, v in enumerate(BSEARCH_TABLE)},
    out_len=1,
))

THOLD = _register(Workload(
    name="tHold",
    description="Digital threshold detector",
    sources={"omsp430": _THOLD_MSP, "bm32": _THOLD_BM32,
             "dr5": _THOLD_DR5},
    input_len=_THOLD_N,
    cases=[{INPUT_BASE + i: v for i, v in
            enumerate([12, 150, 99, 100, 230, 30, 101, 5])},
           {INPUT_BASE + i: v for i, v in
            enumerate([1, 2, 3, 4, 5, 6, 7, 8])}],
    reference=_thold_ref,
    out_len=2,
))

MULT = _register(Workload(
    name="mult",
    description="unsigned multiplication",
    sources={"omsp430": _MULT_MSP, "bm32": _MULT_BM32, "dr5": _MULT_DR5},
    input_len=2,
    cases=[{INPUT_BASE: 7, INPUT_BASE + 1: 9},
           {INPUT_BASE: 255, INPUT_BASE + 1: 255},
           {INPUT_BASE: 0, INPUT_BASE + 1: 1234}],
    reference=_mult_reference,
    out_len=2,
))

TEA8 = _register(Workload(
    name="tea8",
    description="TEA encryption algorithm",
    sources={"omsp430": _tea_msp_source(), "bm32": _TEA_BM32,
             "dr5": _TEA_DR5},
    input_len=2,
    cases=[{INPUT_BASE: 0x1234, INPUT_BASE + 1: 0x5678},
           {INPUT_BASE: 0, INPUT_BASE + 1: 0xFFFF}],
    reference=_tea_ref,
    out_len=2,
))

#: paper Table 1 ordering
WORKLOAD_ORDER = ["Div", "inSort", "binSearch", "tHold", "mult", "tea8"]


def make_tea_workload(rounds: int) -> Workload:
    """A tea variant with a custom round count (unregistered; used by the
    scalability sweep in ``benchmarks/bench_scaling.py``)."""
    return Workload(
        name=f"tea{rounds}",
        description=f"TEA encryption, {rounds} rounds",
        sources={
            "omsp430": _tea_msp_source(rounds),
            "bm32": _tea_rv_source(
                addi="addiu", add="addu", slli="sll", srli="srl",
                bne_tail="bne r7, r0, round", store="sw", rounds=rounds),
            "dr5": _tea_rv_source(
                addi="addi", add="add", slli="slli", srli="srli",
                bne_tail="bne r7, r0, round", store="sw", rounds=rounds),
        },
        input_len=2,
        cases=[{INPUT_BASE: 0x1234, INPUT_BASE + 1: 0x5678}],
        reference=_make_tea_ref(rounds),
        out_len=2,
    )
