"""Randomized concrete-input generation for validation sweeps.

The paper validates bespoke netlists with "fixed known inputs"; a
downstream user wants *many* such vectors.  Each workload has input
preconditions (a divisor must be nonzero, binSearch keys should span
hit/miss cases, sample values fit the word width), so generation is
workload-aware.  Deterministic per seed.
"""

from __future__ import annotations

import random
from typing import Dict, List

from .catalog import BSEARCH_TABLE, INPUT_BASE, WORKLOADS, Workload


def _base(values: List[int]) -> Dict[int, int]:
    return {INPUT_BASE + i: v for i, v in enumerate(values)}


def _gen_div(rng: random.Random, width: int) -> Dict[int, int]:
    # bounded quotient keeps repeated-subtraction runtimes sane
    divisor = rng.randint(1, 50)
    quotient = rng.randint(0, 40)
    remainder = rng.randint(0, divisor - 1)
    return _base([divisor * quotient + remainder, divisor])


def _gen_insort(rng: random.Random, width: int) -> Dict[int, int]:
    return _base([rng.randint(0, 255) for _ in range(6)])


def _gen_binsearch(rng: random.Random, width: int) -> Dict[int, int]:
    if rng.random() < 0.5:
        key = rng.choice(BSEARCH_TABLE)           # hit
    else:
        key = rng.randint(0, 100)                  # likely miss
    return _base([key])


def _gen_thold(rng: random.Random, width: int) -> Dict[int, int]:
    return _base([rng.randint(0, 255) for _ in range(8)])


def _gen_mult(rng: random.Random, width: int) -> Dict[int, int]:
    return _base([rng.randint(0, 0xFF), rng.randint(0, 0xFF)])


def _gen_tea(rng: random.Random, width: int) -> Dict[int, int]:
    mask = (1 << width) - 1
    return _base([rng.randint(0, mask), rng.randint(0, mask)])


_GENERATORS = {
    "Div": _gen_div,
    "inSort": _gen_insort,
    "binSearch": _gen_binsearch,
    "tHold": _gen_thold,
    "mult": _gen_mult,
    "tea8": _gen_tea,
}


def generate_cases(workload: Workload, count: int, seed: int = 0,
                   word_width: int = 16) -> List[Dict[int, int]]:
    """``count`` deterministic random input cases for ``workload``."""
    try:
        gen = _GENERATORS[workload.name]
    except KeyError:
        raise KeyError(
            f"no input generator for workload {workload.name!r}; "
            f"known: {sorted(_GENERATORS)}") from None
    rng = random.Random(seed)
    return [gen(rng, word_width) for _ in range(count)]


def generate_all(count_per_workload: int, seed: int = 0,
                 word_width: int = 16):
    """Cases for every catalog workload, keyed by workload name."""
    return {name: generate_cases(WORKLOADS[name], count_per_workload,
                                 seed=seed, word_width=word_width)
            for name in _GENERATORS}
