"""Pruning unexercisable gates (paper section 3, "bespoke" flow).

"To generate a bespoke processor, unexercisable gates are pruned away and
the microprocessor design is re-synthesized ... During re-synthesis,
fanout values of pruned gates are set to the constant value seen during
the symbolic simulation of the target application."

:func:`prune_unexercisable` performs the first half: every gate whose
output net was proven unexercisable is replaced by a tie cell carrying the
constant value observed in simulation.  The second half (constant folding
through the fanout, buffer sweeping, dead-logic removal) lives in
:mod:`repro.bespoke.resynth`.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..logic.value import Logic
from ..netlist.netlist import Netlist
from ..sim.activity import ToggleProfile


def prune_unexercisable(netlist: Netlist, profile: ToggleProfile,
                        protect: Optional[Set[int]] = None) -> Netlist:
    """Replace unexercisable gates with constant ties.

    ``protect`` is an optional set of gate indices that are never pruned
    (e.g. reset distribution that co-analysis deliberately excludes).
    Gates whose constant value could not be established (profile reports
    ``X``) are conservatively kept.
    """
    pnl = profile.netlist
    if (pnl.name != netlist.name or pnl.gate_count() != netlist.gate_count()
            or len(pnl.nets) != len(netlist.nets)):
        raise ValueError("profile was computed for a different netlist")
    protect = protect or set()
    removable: Dict[int, Logic] = {}
    for gate_idx in profile.unexercisable_gates():
        if gate_idx in protect:
            continue
        const = profile.constant_value(gate_idx)
        if const is None or not const.is_known:
            continue
        removable[gate_idx] = const

    out = Netlist(netlist.name + "_bespoke")
    for net in netlist.nets:
        out.add_net(net.name)
    for idx in netlist.inputs:
        out.mark_input(idx)
    for gate in netlist.gates:
        const = removable.get(gate.index)
        if const is None:
            out.add_gate(gate.name, gate.kind, gate.inputs, gate.output)
        else:
            kind = "TIE1" if const is Logic.L1 else "TIE0"
            out.add_gate(gate.name, kind, (), gate.output)
    for idx in netlist.outputs:
        out.mark_output(idx)
    return out


def prune_report(netlist: Netlist, profile: ToggleProfile) -> Dict[str, int]:
    """Quick statistics about what pruning will remove."""
    unex = profile.unexercisable_gates()
    flops = sum(1 for i in unex if netlist.gates[i].is_sequential)
    return {
        "total_gates": netlist.gate_count(),
        "prunable_gates": len(unex),
        "prunable_flops": flops,
        "exercisable_gates": netlist.gate_count() - len(unex),
    }
