"""Re-synthesis after pruning: constant folding, buffer sweep, dead-logic
removal.

This stands in for the Design Compiler re-synthesis step of the paper's
flow: once pruned gates are tied to their observed constants, those
constants propagate through the surviving fanout, collapsing gates with
controlling inputs, then unreferenced logic is swept away.  The passes are
run to a fixpoint by :func:`resynthesize`.

The transformation is purely structural and behaviour-preserving on the
exercisable cone (validated end-to-end by
:mod:`repro.bespoke.validate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..netlist.netlist import Netlist


@dataclass
class _G:
    """Mutable gate record used during rewriting (names, not indices)."""

    name: str
    kind: str
    ins: List[str]
    out: str


def _explode(netlist: Netlist) -> Tuple[List[_G], List[str], List[str]]:
    gates = [_G(g.name, g.kind,
                [netlist.net_name(i) for i in g.inputs],
                netlist.net_name(g.output))
             for g in netlist.gates]
    inputs = [netlist.net_name(i) for i in netlist.inputs]
    outputs = [netlist.net_name(i) for i in netlist.outputs]
    return gates, inputs, outputs


def _rebuild(name: str, gates: List[_G], inputs: List[str],
             outputs: List[str]) -> Netlist:
    out = Netlist(name)
    for n in inputs:
        out.mark_input(out.get_or_add_net(n))
    for g in gates:
        for n in g.ins:
            out.get_or_add_net(n)
        out.get_or_add_net(g.out)
    for g in gates:
        out.add_gate(g.name, g.kind, [out.net_index(n) for n in g.ins],
                     out.net_index(g.out))
    for n in outputs:
        out.mark_output(out.net_index(n))
    return out


_SEQ = {"DFF", "DFFR", "DFFE", "DFFER"}


def _fold_pass(gates: List[_G]) -> bool:
    """One constant-folding sweep; True when anything changed."""
    const: Dict[str, int] = {}
    for g in gates:
        if g.kind == "TIE0":
            const[g.out] = 0
        elif g.kind == "TIE1":
            const[g.out] = 1
    changed = False

    def tie(g: _G, value: int) -> None:
        nonlocal changed
        g.kind = "TIE1" if value else "TIE0"
        g.ins = []
        changed = True

    def unary(g: _G, kind: str, src: str) -> None:
        nonlocal changed
        g.kind = kind
        g.ins = [src]
        changed = True

    for g in gates:
        if g.kind in _SEQ or g.kind in ("TIE0", "TIE1"):
            continue
        cv = [const.get(n) for n in g.ins]
        if g.kind == "BUF":
            if cv[0] is not None:
                tie(g, cv[0])
        elif g.kind == "NOT":
            if cv[0] is not None:
                tie(g, 1 - cv[0])
        elif g.kind in ("AND", "NAND"):
            inv = g.kind == "NAND"
            if 0 in cv:
                tie(g, 1 if inv else 0)
            elif cv[0] == 1 and cv[1] == 1:
                tie(g, 0 if inv else 1)
            elif cv[0] == 1:
                unary(g, "NOT" if inv else "BUF", g.ins[1])
            elif cv[1] == 1:
                unary(g, "NOT" if inv else "BUF", g.ins[0])
            elif g.ins[0] == g.ins[1]:
                unary(g, "NOT" if inv else "BUF", g.ins[0])
        elif g.kind in ("OR", "NOR"):
            inv = g.kind == "NOR"
            if 1 in cv:
                tie(g, 0 if inv else 1)
            elif cv[0] == 0 and cv[1] == 0:
                tie(g, 1 if inv else 0)
            elif cv[0] == 0:
                unary(g, "NOT" if inv else "BUF", g.ins[1])
            elif cv[1] == 0:
                unary(g, "NOT" if inv else "BUF", g.ins[0])
            elif g.ins[0] == g.ins[1]:
                unary(g, "NOT" if inv else "BUF", g.ins[0])
        elif g.kind in ("XOR", "XNOR"):
            inv = g.kind == "XNOR"
            if cv[0] is not None and cv[1] is not None:
                tie(g, (cv[0] ^ cv[1]) ^ (1 if inv else 0))
            elif cv[0] is not None:
                want_not = (cv[0] == 1) != inv
                unary(g, "NOT" if want_not else "BUF", g.ins[1])
            elif cv[1] is not None:
                want_not = (cv[1] == 1) != inv
                unary(g, "NOT" if want_not else "BUF", g.ins[0])
            elif g.ins[0] == g.ins[1]:
                tie(g, 1 if inv else 0)
        elif g.kind == "MUX2":
            d0, d1, s = g.ins
            if const.get(s) == 0:
                unary(g, "BUF", d0)
            elif const.get(s) == 1:
                unary(g, "BUF", d1)
            elif d0 == d1:
                unary(g, "BUF", d0)
            elif const.get(d0) is not None and const.get(d0) == const.get(d1):
                tie(g, const[d0])
    return changed


def _buffer_sweep(gates: List[_G], inputs: List[str],
                  outputs: List[str]) -> bool:
    """Rewire through BUFs and drop buffers not driving primary outputs."""
    out_set = set(outputs)
    alias: Dict[str, str] = {}
    for g in gates:
        if g.kind == "BUF" and g.out not in out_set:
            alias[g.out] = g.ins[0]

    def root(n: str) -> str:
        seen = []
        while n in alias:
            seen.append(n)
            n = alias[n]
        for s in seen:
            alias[s] = n
        return n

    changed = False
    for g in gates:
        new_ins = [root(n) for n in g.ins]
        if new_ins != g.ins:
            g.ins = new_ins
            changed = True
    before = len(gates)
    gates[:] = [g for g in gates
                if not (g.kind == "BUF" and g.out in alias)]
    return changed or len(gates) != before


def _dead_sweep(gates: List[_G], outputs: List[str]) -> bool:
    """Remove gates not in the transitive fanin of any primary output."""
    driver: Dict[str, _G] = {g.out: g for g in gates}
    live: Set[str] = set()
    work = list(outputs)
    while work:
        net = work.pop()
        if net in live:
            continue
        live.add(net)
        g = driver.get(net)
        if g is not None:
            work.extend(g.ins)
    before = len(gates)
    gates[:] = [g for g in gates if g.out in live]
    return len(gates) != before


def _dedup_ties(gates: List[_G]) -> bool:
    """Collapse all TIE0s (and TIE1s) into one instance each."""
    first: Dict[str, str] = {}
    alias: Dict[str, str] = {}
    for g in gates:
        if g.kind in ("TIE0", "TIE1"):
            if g.kind in first:
                alias[g.out] = first[g.kind]
            else:
                first[g.kind] = g.out
    if not alias:
        return False
    rewired = False
    for g in gates:
        new_ins = [alias.get(n, n) for n in g.ins]
        if new_ins != g.ins:
            g.ins = new_ins
            rewired = True
    return rewired


def resynthesize(netlist: Netlist, keep_output_ties: bool = True) -> Netlist:
    """Run folding / buffer sweep / dead-logic removal to a fixpoint."""
    gates, inputs, outputs = _explode(netlist)
    for _ in range(200):
        changed = _fold_pass(gates)
        changed |= _buffer_sweep(gates, inputs, outputs)
        changed |= _dedup_ties(gates)
        changed |= _dead_sweep(gates, outputs)
        if not changed:
            break
    else:  # pragma: no cover - defensive
        raise RuntimeError("resynthesis did not converge in 200 passes")
    return _rebuild(netlist.name, gates, inputs, outputs)


def area_report(before: Netlist, after: Netlist) -> Dict[str, float]:
    from ..netlist.stats import diff_kinds
    return {
        "gates_before": before.gate_count(),
        "gates_after": after.gate_count(),
        "gate_reduction_percent": round(
            100.0 * (1 - after.gate_count() / max(1, before.gate_count())),
            2),
        "area_before": round(before.area(), 2),
        "area_after": round(after.area(), 2),
        "area_reduction_percent": round(
            100.0 * (1 - after.area() / max(1e-9, before.area())), 2),
        # per-cell-kind breakdown of what pruning/re-synthesis removed,
        # so equivalence results can be read next to what changed
        "pruned_by_kind": {kind: removed
                           for kind, _, _, removed in diff_kinds(before,
                                                                 after)
                           if removed},
    }
