"""Bespoke-netlist validation (paper section 5.0.1).

Three validation modes (``mode=`` argument):

* ``"sim"`` -- the paper's spot-check: simulate the application with
  fixed known inputs on both netlists and verify the observable
  behaviour (PC trace, store stream, final data memory) is identical,
  plus the **subset property**: the set of nets exercised by any
  fixed-input run must be a subset of the exercisable set reported by
  symbolic co-analysis (otherwise the analysis missed behaviour and
  pruning would be unsound).
* ``"sat"`` -- the formal check: a SAT miter
  (:mod:`repro.equiv.miter`) proves the two netlists agree on *every*
  input/state the co-analysis assumptions permit, not just the sampled
  cases; a SAT answer is replayed through ``CycleSim``
  (:mod:`repro.equiv.cex`) before it is reported as a real divergence.
* ``"both"`` -- run both; ``ok`` requires both to pass.

A fourth property, **non-interference** (simulator enhancements must not
change event streams for non-symbolic runs), is tested in the suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..coanalysis.concrete import ConcreteRun, run_concrete
from ..coanalysis.results import CoAnalysisResult
from ..coanalysis.target import SymbolicTarget

VALIDATION_MODES = ("sim", "sat", "both")


@dataclass
class ValidationReport:
    """Outcome of validating one bespoke netlist."""

    cases_run: int = 0
    behaviour_match: bool = True
    subset_ok: bool = True
    all_finished: bool = True
    original_gates: int = 0
    bespoke_gates: int = 0
    mismatches: List[str] = field(default_factory=list)
    mode: str = "sim"
    #: formal result (mode "sat"/"both"): UNSAT / SAT / UNKNOWN / ""
    equiv_status: str = ""
    #: the full :class:`repro.equiv.miter.EquivOutcome` summary dict
    equiv: Dict[str, object] = field(default_factory=dict)
    #: replay verdict for a SAT witness (see :mod:`repro.equiv.cex`)
    equiv_replay: Dict[str, object] = field(default_factory=dict)

    @property
    def sim_ok(self) -> bool:
        return (self.behaviour_match and self.subset_ok
                and self.all_finished and self.cases_run > 0)

    @property
    def equiv_ok(self) -> bool:
        return self.equiv_status == "UNSAT"

    @property
    def ok(self) -> bool:
        if self.mode == "sat":
            return self.equiv_ok
        if self.mode == "both":
            return self.sim_ok and self.equiv_ok
        return self.sim_ok


def _observable(run: ConcreteRun, dmem_range) -> Dict[str, object]:
    mem = run.final_sim.memories["dmem"]
    lo, hi = dmem_range
    words = []
    for addr in range(lo, hi):
        w = mem.read_concrete(addr)
        words.append(w.to_int() if w.is_known else str(w))
    return {
        "pc_trace": run.pc_trace,
        "writes": run.write_trace,
        "dmem": words,
        "finished": run.finished,
    }


def validate_bespoke(original: SymbolicTarget, bespoke: SymbolicTarget,
                     analysis: CoAnalysisResult,
                     cases: Sequence[Dict[int, int]],
                     dmem_compare_range=(0, 128),
                     max_cycles: int = 20000,
                     mode: str = "sim",
                     unroll: int = 1,
                     max_conflicts: Optional[int] = None,
                     csm_states=None,
                     tracer=None) -> ValidationReport:
    """Validate a bespoke netlist against its original.

    ``mode`` selects simulation spot-checks (``"sim"``), the formal SAT
    miter (``"sat"``), or both.  ``unroll``/``max_conflicts``/
    ``csm_states`` (CSM ``SimState`` objects restricting frame-0 state)
    parameterize the formal check (see
    :func:`repro.equiv.miter.check_equivalence`); ``tracer`` receives
    the typed equivalence events.
    """
    if mode not in VALIDATION_MODES:
        raise ValueError(f"unknown validation mode {mode!r}; "
                         f"known: {', '.join(VALIDATION_MODES)}")
    report = ValidationReport(
        original_gates=original.netlist.gate_count(),
        bespoke_gates=bespoke.netlist.gate_count(),
        mode=mode)
    if mode in ("sat", "both"):
        _validate_formal(report, original, bespoke, analysis,
                         unroll=unroll, max_conflicts=max_conflicts,
                         csm_states=csm_states, tracer=tracer)
    if mode == "sat":
        return report
    exercisable = analysis.profile.exercised_nets()

    for i, case in enumerate(cases):
        run_orig = run_concrete(original, case, max_cycles=max_cycles)
        run_besp = run_concrete(bespoke, case, max_cycles=max_cycles)
        report.cases_run += 1
        if not (run_orig.finished and run_besp.finished):
            report.all_finished = False
            report.mismatches.append(
                f"case {i}: original finished={run_orig.finished}, "
                f"bespoke finished={run_besp.finished}")
            continue
        obs_o = _observable(run_orig, dmem_compare_range)
        obs_b = _observable(run_besp, dmem_compare_range)
        if obs_o != obs_b:
            report.behaviour_match = False
            for key in obs_o:
                if obs_o[key] != obs_b[key]:
                    report.mismatches.append(
                        f"case {i}: {key} differs "
                        f"(original {_clip(obs_o[key])} vs bespoke "
                        f"{_clip(obs_b[key])})")
        # subset property on the original netlist's activity
        extra = run_orig.exercised_nets & ~exercisable
        if extra.any():
            report.subset_ok = False
            names = [original.netlist.net_name(j)
                     for j in np.flatnonzero(extra)[:5]]
            report.mismatches.append(
                f"case {i}: {int(extra.sum())} nets exercised concretely "
                f"but not reported exercisable, e.g. {names}")
    return report


def _validate_formal(report: ValidationReport, original: SymbolicTarget,
                     bespoke: SymbolicTarget, analysis: CoAnalysisResult,
                     unroll: int, max_conflicts: Optional[int],
                     csm_states, tracer) -> None:
    """The SAT leg: miter check plus counterexample replay."""
    from ..equiv import (DEFAULT_MAX_CONFLICTS, check_equivalence,
                         replay_witness)
    outcome = check_equivalence(
        original.netlist, bespoke.netlist, profile=analysis.profile,
        unroll=unroll,
        max_conflicts=max_conflicts or DEFAULT_MAX_CONFLICTS,
        csm_states=csm_states,
        state_positions=original.state_net_positions()
        if csm_states is not None else None,
        design=analysis.design, tracer=tracer)
    report.equiv_status = outcome.status
    report.equiv = outcome.summary()
    if outcome.status == "SAT":
        replay = replay_witness(original.netlist, bespoke.netlist,
                                outcome.witness, unroll=unroll)
        report.equiv_replay = replay.summary()
        verdict = "confirmed by CycleSim replay" if replay.confirmed \
            else "NOT reproduced in simulation (assumption gap or " \
                 "encoder bug)"
        report.mismatches.append(
            f"formal: miter SAT at {outcome.diff_point}; {verdict}")
    elif outcome.status == "UNKNOWN":
        report.mismatches.append(
            f"formal: {outcome.detail or 'solver budget exhausted'}")


def _clip(value, limit: int = 120) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit] + "..."
