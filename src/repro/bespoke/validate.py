"""Bespoke-netlist validation (paper section 5.0.1).

Three checks, mirroring the paper's methodology:

1. **Behavioural equivalence**: simulate the application with fixed known
   inputs on both the original and the bespoke gate-level netlist and
   verify the observable behaviour (PC trace, store stream, final data
   memory) is identical.
2. **Subset property**: the set of nets exercised by any fixed-input run
   must be a subset of the exercisable set reported by symbolic
   co-analysis (otherwise the analysis missed behaviour and pruning would
   be unsound).
3. **Non-interference** (tested in the suite, not here): the simulator
   enhancements must not change event streams for non-symbolic runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..coanalysis.concrete import ConcreteRun, run_concrete
from ..coanalysis.results import CoAnalysisResult
from ..coanalysis.target import SymbolicTarget


@dataclass
class ValidationReport:
    """Outcome of validating one bespoke netlist."""

    cases_run: int = 0
    behaviour_match: bool = True
    subset_ok: bool = True
    all_finished: bool = True
    original_gates: int = 0
    bespoke_gates: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (self.behaviour_match and self.subset_ok
                and self.all_finished and self.cases_run > 0)


def _observable(run: ConcreteRun, dmem_range) -> Dict[str, object]:
    mem = run.final_sim.memories["dmem"]
    lo, hi = dmem_range
    words = []
    for addr in range(lo, hi):
        w = mem.read_concrete(addr)
        words.append(w.to_int() if w.is_known else str(w))
    return {
        "pc_trace": run.pc_trace,
        "writes": run.write_trace,
        "dmem": words,
        "finished": run.finished,
    }


def validate_bespoke(original: SymbolicTarget, bespoke: SymbolicTarget,
                     analysis: CoAnalysisResult,
                     cases: Sequence[Dict[int, int]],
                     dmem_compare_range=(0, 128),
                     max_cycles: int = 20000) -> ValidationReport:
    """Run every concrete case on both netlists and compare."""
    report = ValidationReport(
        original_gates=original.netlist.gate_count(),
        bespoke_gates=bespoke.netlist.gate_count())
    exercisable = analysis.profile.exercised_nets()

    for i, case in enumerate(cases):
        run_orig = run_concrete(original, case, max_cycles=max_cycles)
        run_besp = run_concrete(bespoke, case, max_cycles=max_cycles)
        report.cases_run += 1
        if not (run_orig.finished and run_besp.finished):
            report.all_finished = False
            report.mismatches.append(
                f"case {i}: original finished={run_orig.finished}, "
                f"bespoke finished={run_besp.finished}")
            continue
        obs_o = _observable(run_orig, dmem_compare_range)
        obs_b = _observable(run_besp, dmem_compare_range)
        if obs_o != obs_b:
            report.behaviour_match = False
            for key in obs_o:
                if obs_o[key] != obs_b[key]:
                    report.mismatches.append(
                        f"case {i}: {key} differs "
                        f"(original {_clip(obs_o[key])} vs bespoke "
                        f"{_clip(obs_b[key])})")
        # subset property on the original netlist's activity
        extra = run_orig.exercised_nets & ~exercisable
        if extra.any():
            report.subset_ok = False
            names = [original.netlist.net_name(j)
                     for j in np.flatnonzero(extra)[:5]]
            report.mismatches.append(
                f"case {i}: {int(extra.sum())} nets exercised concretely "
                f"but not reported exercisable, e.g. {names}")
    return report


def _clip(value, limit: int = 120) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit] + "..."
