"""Bespoke processor generation: prune, re-synthesize, validate."""

from .prune import prune_report, prune_unexercisable
from .resynth import area_report, resynthesize
from .validate import ValidationReport, validate_bespoke

from ..netlist.netlist import Netlist
from ..sim.activity import ToggleProfile


def generate_bespoke(netlist: Netlist, profile: ToggleProfile) -> Netlist:
    """The full bespoke flow: prune unexercisable gates to their observed
    constants, then re-synthesize (fold + sweep) the survivor netlist."""
    return resynthesize(prune_unexercisable(netlist, profile))


__all__ = [
    "prune_unexercisable", "prune_report",
    "resynthesize", "area_report",
    "validate_bespoke", "ValidationReport",
    "generate_bespoke",
]
