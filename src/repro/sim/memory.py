"""Symbolic (X-capable) memory models.

The paper's testbench declares program/data memories as ``reg`` arrays and
initializes input-dependent regions to ``X`` (Listing 1).  :class:`XMemory`
is that array: every word is a pair of numpy bitplanes ``(val, known)``
with ``known == 0`` meaning the bit is symbolic.

Writes honour four-valued control:

* write-enable ``X``: the write *may* happen, so each written word becomes
  the merge of its old and new contents;
* any address bit ``X``: the write could land anywhere in the addressable
  window, so every word merges with the data (sound, maximally
  conservative).  A counter records how often this fallback fired so
  benchmarks can report it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..logic.value import Logic
from ..logic.vector import LVec


class XMemory:
    """A word-addressed four-valued memory."""

    def __init__(self, words: int, width: int, name: str = "mem"):
        if words <= 0 or width <= 0:
            raise ValueError("words and width must be positive")
        self.name = name
        self.words = words
        self.width = width
        self.val = np.zeros((words, width), dtype=bool)
        self.known = np.ones((words, width), dtype=bool)
        self.x_addr_writes = 0
        self.x_en_writes = 0

    # -- scalar helpers ----------------------------------------------------
    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.words:
            raise IndexError(
                f"{self.name}: address {addr} out of range [0, {self.words})")

    def load_word(self, addr: int, value: int) -> None:
        """Concretely initialize one word (program load, constants)."""
        self._check_addr(addr)
        bits = [(value >> i) & 1 for i in range(self.width)]
        self.val[addr] = np.array(bits, dtype=bool)
        self.known[addr] = True

    def load_words(self, base: int, values) -> None:
        for offset, value in enumerate(values):
            self.load_word(base + offset, value)

    def set_unknown(self, addr: int) -> None:
        """Mark one word as symbolic application input."""
        self._check_addr(addr)
        self.val[addr] = False
        self.known[addr] = False

    def set_unknown_range(self, start: int, end: int) -> None:
        """Mark ``[start, end)`` as symbolic (Listing 1's input region)."""
        for addr in range(start, end):
            self.set_unknown(addr)

    def fill_unknown(self) -> None:
        self.val[:] = False
        self.known[:] = False

    # -- four-valued access ---------------------------------------------------
    def read(self, addr: LVec) -> LVec:
        """Read under a possibly-symbolic address.

        A fully known address reads one word; an address with ``X`` bits
        returns the merge of every word it could select (conservative).
        """
        if addr.is_known:
            a = addr.to_int()
            if a >= self.words:
                return LVec.unknown(self.width)
            return self._word(a)
        lo, hi = self._addr_window(addr)
        val = self.val[lo]
        known = self.known[lo].copy()
        for w in range(lo + 1, hi):
            known &= self.known[w] & (self.val[w] == val)
        return _to_lvec(val & known, known)

    def read_concrete(self, addr: int) -> LVec:
        self._check_addr(addr)
        return self._word(addr)

    def write(self, addr: LVec, data: LVec, enable: Logic = Logic.L1) -> None:
        """Write under four-valued enable/address semantics."""
        if enable is Logic.L0:
            return
        dval, dknown = _from_lvec(data)
        if not addr.is_known:
            self.x_addr_writes += 1
            lo, hi = self._addr_window(addr)
            for w in range(lo, hi):
                self._merge_word(w, dval, dknown)
            return
        a = addr.to_int()
        if a >= self.words:
            return
        if enable is Logic.L1:
            self.val[a] = dval
            self.known[a] = dknown
        else:  # enable X/Z: write may or may not occur
            self.x_en_writes += 1
            self._merge_word(a, dval, dknown)

    # -- internals -----------------------------------------------------------
    def _word(self, addr: int) -> LVec:
        return _to_lvec(self.val[addr], self.known[addr])

    def _merge_word(self, addr: int, dval, dknown) -> None:
        known = self.known[addr] & dknown & (self.val[addr] == dval)
        self.val[addr] &= known
        self.known[addr] = known

    def _addr_window(self, addr: LVec) -> Tuple[int, int]:
        """Smallest concrete address interval covering a symbolic address."""
        lo = hi = 0
        for i in reversed(range(addr.width)):
            bit = addr[i]
            lo <<= 1
            hi <<= 1
            if bit is Logic.L1:
                lo |= 1
                hi |= 1
            elif bit is not Logic.L0:
                hi |= 1
        lo = min(lo, self.words - 1)
        hi = min(hi + 1, self.words)
        return lo, hi

    # -- state management -------------------------------------------------------
    def snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.val.copy(), self.known.copy()

    def restore(self, snap: Tuple[np.ndarray, np.ndarray]) -> None:
        val, known = snap
        self.val[:] = val
        self.known[:] = known

    def covers(self, other: "XMemory") -> bool:
        """True when this memory's contents subsume ``other``'s."""
        ok = ~self.known | (other.known & (self.val == other.val))
        return bool(ok.all())

    def merge_from(self, other: "XMemory") -> None:
        known = self.known & other.known & (self.val == other.val)
        self.val &= known
        self.known = known

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, XMemory)
                and self.width == other.width
                and self.words == other.words
                and bool((self.known == other.known).all())
                and bool(((self.val & self.known)
                          == (other.val & other.known)).all()))

    def __hash__(self):  # pragma: no cover - mutable container
        raise TypeError("XMemory is unhashable")


def _to_lvec(val: np.ndarray, known: np.ndarray) -> LVec:
    bits = []
    for v, k in zip(val.tolist(), known.tolist()):
        bits.append((Logic.L1 if v else Logic.L0) if k else Logic.X)
    return LVec(bits)


def _from_lvec(vec: LVec) -> Tuple[np.ndarray, np.ndarray]:
    val = np.array([b is Logic.L1 for b in vec.bits], dtype=bool)
    known = np.array([b.is_known for b in vec.bits], dtype=bool)
    return val, known
