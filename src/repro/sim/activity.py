"""Gate activity profiles (Algorithm 1, lines 24 and 29-43).

The primary output of co-analysis is the dichotomy of gates into
*exercisable* (some input could toggle them) and *guaranteed-unexercisable*.
A net contributes to the exercisable set when it either toggled during any
explored path or ever carried an ``X`` (an ``X`` means "could be 0 or 1
depending on input", i.e. could toggle).  The driver gate of an exercised
net is exercisable; untoggled gates are annotated with their constant
value for bespoke re-synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

import numpy as np

from ..logic.value import Logic
from ..netlist.netlist import Netlist


@dataclass
class ToggleProfile:
    """Per-net activity accumulated across all simulated paths."""

    netlist: Netlist
    toggled: np.ndarray        # bool per net: value changed at some cycle
    ever_x: np.ndarray         # bool per net: carried X at some cycle
    const_val: np.ndarray      # bool per net: final settled value
    const_known: np.ndarray

    @staticmethod
    def empty(netlist: Netlist) -> "ToggleProfile":
        n = len(netlist.nets)
        return ToggleProfile(netlist,
                             np.zeros(n, dtype=bool),
                             np.zeros(n, dtype=bool),
                             np.zeros(n, dtype=bool),
                             np.zeros(n, dtype=bool))

    def absorb(self, toggled: np.ndarray, ever_x: np.ndarray,
               val: np.ndarray, known: np.ndarray) -> None:
        """Merge one path's activity (Algorithm 1 line 24 / 29-32)."""
        self.toggled |= toggled
        self.ever_x |= ever_x
        self.const_val[:] = val
        self.const_known[:] = known

    def merge(self, other: "ToggleProfile") -> None:
        self.toggled |= other.toggled
        self.ever_x |= other.ever_x
        self.const_val[:] = other.const_val
        self.const_known[:] = other.const_known

    # -- derived sets -----------------------------------------------------
    def exercised_nets(self) -> np.ndarray:
        return self.toggled | self.ever_x

    def exercisable_gates(self) -> Set[int]:
        """Gate indices whose output net was exercised, plus all
        sequential and tie cells (state/constant cells are kept)."""
        nets = self.exercised_nets()
        out: Set[int] = set()
        for gate in self.netlist.gates:
            if nets[gate.output]:
                out.add(gate.index)
        return out

    def unexercisable_gates(self) -> Set[int]:
        ex = self.exercisable_gates()
        return {g.index for g in self.netlist.gates if g.index not in ex}

    def constant_value(self, gate_index: int) -> Optional[Logic]:
        """The settled constant output of an unexercised gate
        (Algorithm 1 line 42), or None if it was exercised."""
        net = self.netlist.gates[gate_index].output
        if self.exercised_nets()[net]:
            return None
        if not self.const_known[net]:
            return Logic.X
        return Logic.L1 if self.const_val[net] else Logic.L0

    def summary(self) -> Dict[str, int]:
        total = len(self.netlist.gates)
        exercisable = len(self.exercisable_gates())
        return {
            "total_gates": total,
            "exercisable_gates": exercisable,
            "unexercisable_gates": total - exercisable,
        }
