"""Event-driven gate-level simulator (the "enhanced iverilog" kernel).

This is the faithful reproduction of the paper's simulator work: an
event-driven engine whose time steps execute through the region scheduler
of :mod:`repro.sim.events`, including the added **Symbolic** region that
hosts `$monitor_x`-style tasks, halting, and state save/restore
(sections 3.1-3.2).

The kernel is value-domain generic (section 3.4): plug in
:class:`PlainXDomain` for ordinary four-valued simulation or
:class:`LabeledSymbolDomain` for identified-symbol propagation with
optional taint tracking (Fig. 4).  It is intended for small-to-medium
designs and for validating the vectorized engine; whole-core co-analysis
uses :mod:`repro.sim.cycle_sim`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..logic import tables
from ..logic.symbol import SymBit, nand_, nor_, xnor_
from ..logic.value import Logic
from ..netlist.netlist import Gate, Netlist
from .events import EventScheduler, HaltSimulation, Region


class ValueDomain:
    """Strategy object defining what flows on nets."""

    def const(self, level: Logic):
        raise NotImplementedError

    def unknown(self):
        raise NotImplementedError

    def is_unknown(self, value) -> bool:
        raise NotImplementedError

    def to_logic(self, value) -> Logic:
        raise NotImplementedError

    def eval_comb(self, kind: str, inputs: Sequence):
        raise NotImplementedError


class PlainXDomain(ValueDomain):
    """Unlabeled X propagation (Fig. 4 right): cheap and conservative."""

    def const(self, level: Logic) -> Logic:
        return level

    def unknown(self) -> Logic:
        return Logic.X

    def is_unknown(self, value: Logic) -> bool:
        return not value.is_known

    def to_logic(self, value: Logic) -> Logic:
        return value

    def eval_comb(self, kind: str, inputs: Sequence[Logic]) -> Logic:
        return tables.evaluate(kind, inputs)


class LabeledSymbolDomain(ValueDomain):
    """Identified symbols (Fig. 4 left) with taint propagation.

    Same-symbol recombination resolves (``a ^ a = 0``), which makes the
    analysis strictly less conservative than plain-X at higher cost.
    """

    def const(self, level: Logic) -> SymBit:
        return SymBit.from_logic(level)

    def unknown(self) -> SymBit:
        return SymBit.unknown()

    def is_unknown(self, value: SymBit) -> bool:
        return not value.level.is_known

    def to_logic(self, value: SymBit) -> Logic:
        return value.level

    def eval_comb(self, kind: str, inputs: Sequence[SymBit]) -> SymBit:
        if kind == "NOT":
            return inputs[0].inv()
        if kind == "BUF":
            return inputs[0]
        if kind == "AND":
            return inputs[0].and_(inputs[1])
        if kind == "OR":
            return inputs[0].or_(inputs[1])
        if kind == "XOR":
            return inputs[0].xor_(inputs[1])
        if kind == "NAND":
            return nand_(inputs[0], inputs[1])
        if kind == "NOR":
            return nor_(inputs[0], inputs[1])
        if kind == "XNOR":
            return xnor_(inputs[0], inputs[1])
        if kind == "MUX2":
            return inputs[2].mux(inputs[0], inputs[1])
        if kind == "TIE0":
            return SymBit.const(0)
        if kind == "TIE1":
            return SymBit.const(1)
        raise KeyError(f"no symbolic evaluator for {kind!r}")


class EventSim:
    """Event-driven simulator instance over one netlist.

    The clock is implicit: :meth:`tick` runs one full clock cycle as two
    time steps (posedge, negedge), each drained through every region.
    System tasks registered via :meth:`add_symbolic_task` run in the
    Symbolic region of every time step, exactly like the paper's
    ``$monitor_x``.
    """

    def __init__(self, netlist: Netlist,
                 domain: Optional[ValueDomain] = None):
        netlist.validate()
        self.netlist = netlist
        self.domain = domain or PlainXDomain()
        self.scheduler = EventScheduler()
        self.values: List = [self.domain.unknown()
                             for _ in netlist.nets]
        self._forced: Dict[int, object] = {}
        self._pending_eval: Set[int] = set()
        self._symbolic_tasks: List[Callable[["EventSim"], None]] = []
        self.cycle = 0
        self._in_posedge = False
        for gate in netlist.gates:
            if not gate.is_sequential:
                self._schedule_eval(gate.index)
        self.scheduler.run_time_step()

    # -- value access ------------------------------------------------------
    def get(self, net: int):
        return self.values[net]

    def get_logic(self, net: int) -> Logic:
        return self.domain.to_logic(self.values[net])

    def get_logic_by_name(self, name: str) -> Logic:
        return self.get_logic(self.netlist.net_index(name))

    def poke(self, net: int, value) -> None:
        """Testbench-drive a net (primary inputs only, as in Listing 1)."""
        if self.netlist.nets[net].driver is not None:
            raise ValueError(
                f"net {self.netlist.net_name(net)!r} is gate-driven; "
                f"poke only primary inputs")
        self._update(net, value)

    def poke_by_name(self, name: str, value) -> None:
        self.poke(self.netlist.net_index(name), value)

    # -- forcing -----------------------------------------------------------
    def force(self, net: int, value) -> None:
        """Pin a net, overriding its driver, until :meth:`release`.

        Mirrors :meth:`CycleSim.force` so the randomized cross-tests can
        exercise forced nets on both engines.
        """
        if isinstance(value, Logic):
            value = self.domain.const(value)
        self._forced[net] = value
        self._write(net, value)

    def release(self, net: Optional[int] = None) -> None:
        """Remove one force, or all forces when ``net`` is None; the
        net's own driver (if combinational) re-derives its value."""
        if net is None:
            released = list(self._forced)
            self._forced.clear()
        elif net in self._forced:
            released = [net]
            del self._forced[net]
        else:
            return
        for n in released:
            drv = self.netlist.nets[n].driver
            if drv is not None and not self.netlist.gates[drv].is_sequential:
                self._schedule_eval(drv)

    def _update(self, net: int, value) -> None:
        if net in self._forced:
            value = self._forced[net]
        self._write(net, value)

    def _write(self, net: int, value) -> None:
        if _same(self.values[net], value):
            return
        self.values[net] = value
        for gate_idx in self.netlist.nets[net].fanout:
            gate = self.netlist.gates[gate_idx]
            if not gate.is_sequential:
                self._schedule_eval(gate_idx)

    def _schedule_eval(self, gate_idx: int) -> None:
        if gate_idx in self._pending_eval:
            return
        self._pending_eval.add(gate_idx)

        def run() -> None:
            self._pending_eval.discard(gate_idx)
            gate = self.netlist.gates[gate_idx]
            ins = [self.values[i] for i in gate.inputs]
            self._update(gate.output, self.domain.eval_comb(gate.kind, ins))

        self.scheduler.schedule(Region.ACTIVE, run)

    # -- sequential behaviour ----------------------------------------------
    def _flop_next(self, gate: Gate):
        d = self.values[gate.inputs[0]]
        q = self.values[gate.output]
        dom = self.domain
        if gate.kind in ("DFFE", "DFFER"):
            enable = self.values[gate.inputs[1]]
            d = dom.eval_comb("MUX2", [q, d, enable])
        if gate.kind in ("DFFR", "DFFER"):
            reset = self.values[gate.inputs[-1]]
            d = dom.eval_comb("MUX2", [d, dom.const(Logic.L0), reset])
        return d

    def _posedge(self) -> None:
        """Sample all flops now; commit via NBA (race-free, like RTL)."""
        updates: List[Tuple[int, object]] = [
            (g.output, self._flop_next(g))
            for g in self.netlist.gates if g.is_sequential]

        def commit() -> None:
            for net, value in updates:
                self._update(net, value)

        self.scheduler.schedule(Region.NBA, commit)

    # -- symbolic region -------------------------------------------------------
    def add_symbolic_task(self, task: Callable[["EventSim"], None]) -> None:
        """Register a task to run in the Symbolic region each time step."""
        self._symbolic_tasks.append(task)

    def _arm_symbolic(self) -> None:
        for task in self._symbolic_tasks:
            self.scheduler.schedule(
                Region.SYMBOLIC, lambda t=task: t(self))

    # -- running ------------------------------------------------------------
    def tick(self) -> None:
        """One clock cycle: settle, posedge sample, NBA commit, settle,
        then Symbolic-region tasks observe the new settled state.  Each
        tick is one simulator time unit."""
        self.scheduler.run_time_step()        # settle pre-edge inputs
        self._posedge()
        self._arm_symbolic()
        self.scheduler.run_time_step()        # NBA commit + resettle + tasks
        self.cycle += 1
        self.scheduler.time += 1

    def settle(self) -> None:
        self.scheduler.run_time_step()

    def run(self, cycles: int) -> int:
        """Run up to ``cycles`` ticks; returns ticks completed (may stop
        early on :class:`HaltSimulation`)."""
        done = 0
        try:
            for _ in range(cycles):
                self.tick()
                done += 1
        except HaltSimulation:
            raise
        return done

    # -- save / restore -----------------------------------------------------
    def save_state(self) -> Dict:
        """Serialize simulator state (paper section 3, item 2).

        Captures net values and the simulator's own position (cycle
        count); the event queue is empty at tick boundaries by
        construction, matching the paper's note that restoring overrides
        any stale first-step events.
        """
        return {
            "netlist": self.netlist.name,
            "cycle": self.cycle,
            "values": list(self.values),
        }

    def restore_state(self, state: Dict) -> None:
        """Reproduction of ``$initialize_state()`` (section 3, item 3)."""
        if state["netlist"] != self.netlist.name:
            raise ValueError(
                f"state was saved for design {state['netlist']!r}, "
                f"not {self.netlist.name!r}")
        if len(state["values"]) != len(self.values):
            raise ValueError("state size does not match design")
        self.values = list(state["values"])
        self.cycle = state["cycle"]
        self._forced.clear()   # forces are path context, not state
        self._pending_eval.clear()
        self.scheduler.clear()
        # Re-derive combinational consistency from the restored state.
        for gate in self.netlist.gates:
            if not gate.is_sequential:
                self._schedule_eval(gate.index)
        self.scheduler.run_time_step()


def _same(a, b) -> bool:
    if isinstance(a, Logic) and isinstance(b, Logic):
        return a is b
    return a == b
