"""Vectorized levelized cycle engine.

The event kernel in :mod:`repro.sim.event_sim` reproduces the paper's
iverilog architecture faithfully, but a pure-Python event queue cannot
sweep a whole processor for thousands of cycles.  This engine is the
throughput path: it compiles the netlist once into per-(level, kind) index
arrays and evaluates each cycle with a handful of numpy operations.

Encoding: every net is a pair of booleans ``(val, known)`` across two
numpy planes; ``known == False`` is ``X`` (``Z`` collapses to ``X``, which
is safe for the non-tristate cell library).  All evaluators implement the
same Kleene semantics as :mod:`repro.logic.tables`; engine equivalence is
enforced by randomized cross-tests.

The engine supports the three paper-specific features directly:

* **monitoring** -- arbitrary net lists can be read back as
  :class:`~repro.logic.vector.LVec`;
* **state save/restore** -- :meth:`CycleSim.snapshot` /
  :meth:`CycleSim.restore` capture flop outputs, primary inputs and
  attached memories (comb logic is re-settled on restore);
* **forcing** -- :meth:`CycleSim.force` pins a net to a value during
  settle, which is how the co-analysis engine steers a forked simulation
  down one side of a branch ("appropriate control flow signals are set",
  paper section 3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..logic.value import Logic
from ..logic.vector import LVec
from ..netlist.netlist import Netlist
from .memory import XMemory
from .state import SimState


class _Group:
    """All gates of one kind within one topological level."""

    __slots__ = ("kind", "ins", "out")

    def __init__(self, kind: str, ins: List[np.ndarray], out: np.ndarray):
        self.kind = kind
        self.ins = ins
        self.out = out


class CompiledNetlist:
    """Netlist lowered to index arrays for vectorized evaluation."""

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self.n_nets = len(netlist.nets)
        levels = netlist.levelize()

        # comb schedule: (level, kind) groups in level order
        buckets: Dict[Tuple[int, str], List[int]] = {}
        for g in netlist.gates:
            if g.is_sequential:
                continue
            buckets.setdefault((levels[g.index], g.kind), []).append(g.index)
        self.schedule: List[_Group] = []
        for (lvl, kind), gate_ids in sorted(buckets.items()):
            arity = netlist.gates[gate_ids[0]].cell.arity
            ins = [np.array([netlist.gates[gi].inputs[p] for gi in gate_ids],
                            dtype=np.int64) for p in range(arity)]
            out = np.array([netlist.gates[gi].output for gi in gate_ids],
                           dtype=np.int64)
            self.schedule.append(_Group(kind, ins, out))

        # sequential schedule: flops grouped by kind
        seq_buckets: Dict[str, List[int]] = {}
        for g in netlist.gates:
            if g.is_sequential:
                seq_buckets.setdefault(g.kind, []).append(g.index)
        self.flops: List[_Group] = []
        for kind, gate_ids in sorted(seq_buckets.items()):
            arity = netlist.gates[gate_ids[0]].cell.arity
            ins = [np.array([netlist.gates[gi].inputs[p] for gi in gate_ids],
                            dtype=np.int64) for p in range(arity)]
            out = np.array([netlist.gates[gi].output for gi in gate_ids],
                           dtype=np.int64)
            self.flops.append(_Group(kind, ins, out))

        # state nets: flop outputs + primary inputs (the restorable part)
        state: List[int] = [n for n in netlist.inputs]
        for grp in self.flops:
            state.extend(grp.out.tolist())
        self.state_nets = np.array(sorted(set(state)), dtype=np.int64)

        # map net -> driver gate (for toggle attribution)
        self.driver = np.full(self.n_nets, -1, dtype=np.int64)
        for g in netlist.gates:
            self.driver[g.output] = g.index


class CycleSim:
    """Cycle-accurate four-valued simulator over a compiled netlist."""

    def __init__(self, compiled: CompiledNetlist,
                 record_activity: bool = True):
        self.c = compiled
        n = compiled.n_nets
        self.val = np.zeros(n, dtype=bool)
        self.known = np.zeros(n, dtype=bool)   # everything starts X
        self.cycle = 0
        self.memories: Dict[str, XMemory] = {}
        self.record_activity = record_activity
        self.toggled = np.zeros(n, dtype=bool)
        self.ever_x = np.zeros(n, dtype=bool)
        self._activity_armed = False
        self._prev_val = np.zeros(n, dtype=bool)
        self._prev_known = np.zeros(n, dtype=bool)
        self._force_nets = np.zeros(0, dtype=np.int64)
        self._force_val = np.zeros(0, dtype=bool)
        self._force_known = np.zeros(0, dtype=bool)
        self._tie_init()

    # -- memories ------------------------------------------------------------
    def attach_memory(self, memory: XMemory) -> XMemory:
        if memory.name in self.memories:
            raise ValueError(f"memory {memory.name!r} already attached")
        self.memories[memory.name] = memory
        return memory

    # -- net access -----------------------------------------------------------
    def set_net(self, net: int, value: Logic) -> None:
        if value.is_known:
            self.val[net] = value is Logic.L1
            self.known[net] = True
        else:
            self.val[net] = False
            self.known[net] = False

    def get_net(self, net: int) -> Logic:
        if not self.known[net]:
            return Logic.X
        return Logic.L1 if self.val[net] else Logic.L0

    def set_bus(self, nets: Sequence[int], value: LVec) -> None:
        if len(nets) != value.width:
            raise ValueError("bus width mismatch")
        for net, bit in zip(nets, value.bits):
            self.set_net(net, bit)

    def get_bus(self, nets: Sequence[int]) -> LVec:
        return LVec([self.get_net(n) for n in nets])

    def set_input(self, name: str, value) -> None:
        """Drive a named primary input (scalar Logic/int or LVec)."""
        nl = self.c.netlist
        if isinstance(value, LVec):
            self.set_bus(nl.bus(name, value.width), value)
        else:
            level = value if isinstance(value, Logic) else \
                (Logic.L1 if value else Logic.L0)
            self.set_net(nl.net_index(name), level)

    # -- forcing ------------------------------------------------------------
    def force(self, net: int, value: Logic) -> None:
        """Pin a net to ``value`` during settle until :meth:`release`."""
        nets = self._force_nets.tolist()
        vals = self._force_val.tolist()
        knowns = self._force_known.tolist()
        if net in nets:
            i = nets.index(net)
            vals[i] = value is Logic.L1
            knowns[i] = value.is_known
        else:
            nets.append(net)
            vals.append(value is Logic.L1)
            knowns.append(value.is_known)
        self._force_nets = np.array(nets, dtype=np.int64)
        self._force_val = np.array(vals, dtype=bool)
        self._force_known = np.array(knowns, dtype=bool)

    def release(self, net: Optional[int] = None) -> None:
        """Remove one force, or all forces when ``net`` is None."""
        if net is None:
            self._force_nets = np.zeros(0, dtype=np.int64)
            self._force_val = np.zeros(0, dtype=bool)
            self._force_known = np.zeros(0, dtype=bool)
            return
        keep = self._force_nets != net
        self._force_nets = self._force_nets[keep]
        self._force_val = self._force_val[keep]
        self._force_known = self._force_known[keep]

    def _apply_forces(self) -> None:
        if self._force_nets.size:
            self.val[self._force_nets] = self._force_val
            self.known[self._force_nets] = self._force_known

    # -- evaluation ------------------------------------------------------------
    def _tie_init(self) -> None:
        for grp in self.c.schedule:
            if grp.kind == "TIE0":
                self.val[grp.out] = False
                self.known[grp.out] = True
            elif grp.kind == "TIE1":
                self.val[grp.out] = True
                self.known[grp.out] = True

    def settle(self) -> None:
        """One full combinational sweep in topological order."""
        val, known = self.val, self.known
        self._apply_forces()
        for grp in self.c.schedule:
            kind = grp.kind
            out = grp.out
            if kind == "BUF":
                a = grp.ins[0]
                val[out] = val[a]
                known[out] = known[a]
            elif kind == "NOT":
                a = grp.ins[0]
                ka = known[a]
                val[out] = ~val[a] & ka
                known[out] = ka
            elif kind in ("AND", "NAND"):
                a, b = grp.ins
                va, ka = val[a], known[a]
                vb, kb = val[b], known[b]
                one = va & ka & vb & kb
                zero = (ka & ~va) | (kb & ~vb)
                k = one | zero
                v = one if kind == "AND" else (zero & k)
                val[out] = v
                known[out] = k
            elif kind in ("OR", "NOR"):
                a, b = grp.ins
                va, ka = val[a], known[a]
                vb, kb = val[b], known[b]
                one = (va & ka) | (vb & kb)
                zero = (ka & ~va) & (kb & ~vb)
                k = one | zero
                v = one if kind == "OR" else zero
                val[out] = v
                known[out] = k
            elif kind in ("XOR", "XNOR"):
                a, b = grp.ins
                k = known[a] & known[b]
                x = val[a] ^ val[b]
                val[out] = (x if kind == "XOR" else ~x) & k
                known[out] = k
            elif kind == "MUX2":
                d0, d1, s = grp.ins
                vs, ks = val[s], known[s]
                v0, k0 = val[d0], known[d0]
                v1, k1 = val[d1], known[d1]
                s1 = ks & vs
                s0 = ks & ~vs
                agree = k0 & k1 & (v0 == v1)
                k = (s0 & k0) | (s1 & k1) | (~ks & agree)
                v = ((s0 & v0) | (s1 & v1) | (~ks & agree & v0)) & k
                val[out] = v
                known[out] = k
            # TIE0/TIE1 already initialized and never change
            if self._force_nets.size:
                self._apply_forces()

    def clock_edge(self) -> None:
        """Advance all flops one positive edge (synchronous semantics)."""
        val, known = self.val, self.known
        for grp in self.c.flops:
            kind = grp.kind
            out = grp.out
            d = grp.ins[0]
            vd, kd = val[d], known[d]
            vq, kq = val[out], known[out]
            if kind in ("DFFE", "DFFER"):
                e = grp.ins[1]
                ve, ke = val[e], known[e]
                hold_v, hold_k = vq, kq
                agree = kd & kq & (vd == vq)
                nv = np.where(ke, np.where(ve, vd, hold_v), agree & vd)
                nk = np.where(ke, np.where(ve, kd, hold_k), agree)
            else:
                nv, nk = vd.copy(), kd.copy()
            if kind in ("DFFR", "DFFER"):
                r = grp.ins[-1]
                vr, kr = val[r], known[r]
                r_on = kr & vr
                r_off = kr & ~vr
                known_zero = nk & ~nv
                nk = np.where(r_on, True, np.where(r_off, nk, known_zero))
                nv = np.where(r_on, False, np.where(r_off, nv, False))
            val[out] = nv
            known[out] = nk
        self.cycle += 1

    # -- activity ---------------------------------------------------------------
    def arm_activity(self) -> None:
        """Begin toggle recording (call after reset settles)."""
        self._activity_armed = True
        self._prev_val = self.val.copy()
        self._prev_known = self.known.copy()

    def record_activity_now(self) -> None:
        if not (self.record_activity and self._activity_armed):
            return
        self.ever_x |= ~self.known
        changed = (self.val != self._prev_val) | \
                  (self.known != self._prev_known)
        self.toggled |= changed
        self._prev_val[:] = self.val
        self._prev_known[:] = self.known

    def exercised_nets(self) -> np.ndarray:
        """Boolean per-net array: net toggled or was ever X."""
        return self.toggled | self.ever_x

    def reset_activity(self) -> None:
        self.toggled[:] = False
        self.ever_x[:] = False
        self._activity_armed = False

    # -- stepping ---------------------------------------------------------------
    def step(self, drive: Optional[Callable[["CycleSim"], None]] = None,
             on_edge: Optional[Callable[["CycleSim"], None]] = None) -> None:
        """One full clock cycle.

        ``drive`` is called between two settle sweeps so a testbench can
        respond combinationally to design outputs (e.g. feed instruction
        words for the fetched address).  ``on_edge`` is called after the
        settled values are final and before flops advance -- the place to
        commit memory writes.
        """
        self.settle()
        if drive is not None:
            drive(self)
            self.settle()
        self.record_activity_now()
        if on_edge is not None:
            on_edge(self)
        self.clock_edge()

    # -- snapshots -----------------------------------------------------------
    def snapshot(self, pc: Optional[int] = None) -> SimState:
        sn = self.c.state_nets
        return SimState(
            net_val=(self.val[sn] & self.known[sn]).copy(),
            net_known=self.known[sn].copy(),
            memories={name: mem.snapshot()
                      for name, mem in self.memories.items()},
            cycle=self.cycle,
            pc=pc,
        )

    def restore(self, state: SimState) -> None:
        sn = self.c.state_nets
        if state.net_val.shape != sn.shape:
            raise ValueError("snapshot does not match this netlist")
        self.val[:] = False
        self.known[:] = False
        self._tie_init()
        self.val[sn] = state.net_val
        self.known[sn] = state.net_known
        for name, snap in state.memories.items():
            self.memories[name].restore(snap)
        self.cycle = state.cycle
        self.release()
        self.settle()
        if self._activity_armed:
            self._prev_val[:] = self.val
            self._prev_known[:] = self.known
