"""Vectorized levelized cycle engine.

The event kernel in :mod:`repro.sim.event_sim` reproduces the paper's
iverilog architecture faithfully, but a pure-Python event queue cannot
sweep a whole processor for thousands of cycles.  This engine is the
throughput path: it compiles the netlist once into per-(level, kind) index
arrays and evaluates each cycle with a handful of numpy operations.

Encoding: every net is a pair of booleans ``(val, known)`` across two
numpy planes; ``known == False`` is ``X`` (``Z`` collapses to ``X``, which
is safe for the non-tristate cell library).  All evaluators implement the
same Kleene semantics as :mod:`repro.logic.tables`; engine equivalence is
enforced by randomized cross-tests.

The engine supports the three paper-specific features directly:

* **monitoring** -- arbitrary net lists can be read back as
  :class:`~repro.logic.vector.LVec`;
* **state save/restore** -- :meth:`CycleSim.snapshot` /
  :meth:`CycleSim.restore` capture flop outputs, primary inputs and
  attached memories (comb logic is re-settled on restore);
* **forcing** -- :meth:`CycleSim.force` pins a net to a value during
  settle, which is how the co-analysis engine steers a forked simulation
  down one side of a branch ("appropriate control flow signals are set",
  paper section 3).

Settling is *incremental*: every mutation (``set_input``, ``force``,
``restore``, ``clock_edge``) marks the nets it actually changed dirty,
and :meth:`CycleSim.settle` only re-evaluates the ``(level, kind)``
groups inside the fanout cone of those nets, walking a per-net cone
index built once at compile time.  When the dirty frontier grows past
``incremental_threshold`` of the design, settle falls back to the full
levelized sweep (the cone bookkeeping would cost more than it saves).
This is what makes fork-heavy path replay cheap: restoring a snapshot
that differs in a handful of state bits re-simulates only the logic
those bits reach, not the whole core.
"""

from __future__ import annotations

import warnings
import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..logic.value import Logic
from ..logic.vector import LVec
from ..netlist.netlist import Netlist
from .memory import XMemory
from .planes import BoolPlanes
from .state import SimState


class ForcedRestoreWarning(RuntimeWarning):
    """A snapshot was restored while forces were still active.

    :meth:`CycleSim.restore` drops all active forces (a snapshot captures
    architectural state only, and a stale force would silently steer the
    restored path).  Callers that need a force on the restored path must
    re-apply it *after* restore -- the order the co-analysis engine uses.
    """


class _Group:
    """All gates of one kind within one topological level."""

    __slots__ = ("kind", "ins", "out", "level")

    def __init__(self, kind: str, ins: List[np.ndarray], out: np.ndarray,
                 level: int):
        self.kind = kind
        self.ins = ins
        self.out = out
        self.level = level


class CompiledNetlist:
    """Netlist lowered to index arrays for vectorized evaluation.

    Besides the levelized ``(level, kind)`` evaluation schedule, the
    compile step builds the *fanout-cone index* used by incremental
    settling: a CSR mapping ``net -> schedule groups that read it``
    (:attr:`fanout_ptr` / :attr:`fanout_groups`), the comb level of each
    net's driver (:attr:`net_comb_level`, ``-1`` for primary inputs,
    flop outputs and ties), and a ``gate -> schedule group`` map
    (:attr:`gate_group`).

    Compilation is pure and the result is immutable, so instances are
    shared freely between simulators; use :func:`compile_netlist` to get
    the per-netlist cached instance instead of recompiling per segment.
    """

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self.n_nets = len(netlist.nets)
        levels = netlist.levelize()

        # comb schedule: (level, kind) groups in level order; ties are
        # constant and kept out of the re-evaluated schedule entirely
        buckets: Dict[Tuple[int, str], List[int]] = {}
        tie_buckets: Dict[str, List[int]] = {}
        for g in netlist.gates:
            if g.is_sequential:
                continue
            if g.kind in ("TIE0", "TIE1"):
                tie_buckets.setdefault(g.kind, []).append(g.index)
                continue
            buckets.setdefault((levels[g.index], g.kind), []).append(g.index)
        self.schedule: List[_Group] = []
        for (lvl, kind), gate_ids in sorted(buckets.items()):
            arity = netlist.gates[gate_ids[0]].cell.arity
            ins = [np.array([netlist.gates[gi].inputs[p] for gi in gate_ids],
                            dtype=np.int64) for p in range(arity)]
            out = np.array([netlist.gates[gi].output for gi in gate_ids],
                           dtype=np.int64)
            self.schedule.append(_Group(kind, ins, out, lvl))
        self.n_groups = len(self.schedule)
        self.ties: List[Tuple[str, np.ndarray]] = [
            (kind, np.array([netlist.gates[gi].output for gi in gate_ids],
                            dtype=np.int64))
            for kind, gate_ids in sorted(tie_buckets.items())]

        # sequential schedule: flops grouped by kind
        seq_buckets: Dict[str, List[int]] = {}
        for g in netlist.gates:
            if g.is_sequential:
                seq_buckets.setdefault(g.kind, []).append(g.index)
        self.flops: List[_Group] = []
        for kind, gate_ids in sorted(seq_buckets.items()):
            arity = netlist.gates[gate_ids[0]].cell.arity
            ins = [np.array([netlist.gates[gi].inputs[p] for gi in gate_ids],
                            dtype=np.int64) for p in range(arity)]
            out = np.array([netlist.gates[gi].output for gi in gate_ids],
                           dtype=np.int64)
            self.flops.append(_Group(kind, ins, out, 0))

        # state nets: flop outputs + primary inputs (the restorable part)
        state: List[int] = [n for n in netlist.inputs]
        for grp in self.flops:
            state.extend(grp.out.tolist())
        self.state_nets = np.array(sorted(set(state)), dtype=np.int64)

        # map net -> driver gate (for toggle attribution)
        self.driver = np.full(self.n_nets, -1, dtype=np.int64)
        for g in netlist.gates:
            self.driver[g.output] = g.index

        # gate -> position of its group in the comb schedule (-1 for
        # flops and ties), and net -> comb level of its driver
        self.gate_group = np.full(len(netlist.gates), -1, dtype=np.int64)
        for pos, grp_entry in enumerate(sorted(buckets.items())):
            for gi in grp_entry[1]:
                self.gate_group[gi] = pos
        self.net_comb_level = np.full(self.n_nets, -1, dtype=np.int64)
        for g in netlist.gates:
            if self.gate_group[g.index] >= 0:
                self.net_comb_level[g.output] = levels[g.index]

        # fanout-cone index (CSR): net -> comb schedule groups reading it
        fan: List[List[int]] = [[] for _ in range(self.n_nets)]
        for g in netlist.gates:
            grp_pos = self.gate_group[g.index]
            if grp_pos < 0:
                continue
            for net in set(g.inputs):
                fan[net].append(int(grp_pos))
        counts = np.zeros(self.n_nets + 1, dtype=np.int64)
        flat: List[int] = []
        for net, groups in enumerate(fan):
            uniq = sorted(set(groups))
            counts[net + 1] = len(uniq)
            flat.extend(uniq)
        self.fanout_ptr = np.cumsum(counts)
        self.fanout_groups = np.array(flat, dtype=np.int64)


#: per-process compiled-netlist cache keyed by netlist object identity
#: (weakly, so dropping the netlist drops the compile) plus the
#: netlist's structural mutation counter -- a netlist edited after a
#: compile recompiles instead of serving a stale schedule.
_COMPILE_CACHE: ("weakref.WeakKeyDictionary[Netlist, "
                 "Tuple[int, CompiledNetlist]]") = \
    weakref.WeakKeyDictionary()


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Compile ``netlist``, memoizing by object identity.

    Repeated target construction over the same netlist (worker
    initializers, per-segment replays, the reporting grid) hits the
    cache instead of re-levelizing and re-bucketing the whole design.
    """
    version = getattr(netlist, "_mutation_version", None)
    if version is None:
        # no mutation counter means edits are invisible to the cache
        # key: a -1 sentinel would match itself forever and serve a
        # stale schedule after the first in-place edit, so treat such
        # netlists as uncacheable and compile fresh every time
        return CompiledNetlist(netlist)
    entry = _COMPILE_CACHE.get(netlist)
    if entry is not None and entry[0] == version:
        return entry[1]
    compiled = CompiledNetlist(netlist)
    _COMPILE_CACHE[netlist] = (version, compiled)
    return compiled


class CycleSim:
    """Cycle-accurate four-valued simulator over a compiled netlist.

    Args:
        compiled: the shared :class:`CompiledNetlist`.
        record_activity: collect toggle/ever-X planes (see
            :meth:`arm_activity`).
        incremental: settle only the dirty fanout cone (default).  Set
            False to force the full levelized sweep on every settle --
            the pre-incremental behaviour, kept for benchmarking and as
            an escape hatch.
        incremental_threshold: fraction of nets in the dirty frontier
            above which settle falls back to the full sweep.
    """

    def __init__(self, compiled: CompiledNetlist,
                 record_activity: bool = True,
                 incremental: bool = True,
                 incremental_threshold: float = 0.25):
        self.c = compiled
        n = compiled.n_nets
        # the shared six-plane state layout (see repro.sim.planes);
        # the serial engine is the one-state bool specialization
        self.planes = BoolPlanes(n)
        self.val = self.planes.val
        self.known = self.planes.known         # everything starts X
        self.cycle = 0
        self.memories: Dict[str, XMemory] = {}
        self.record_activity = record_activity
        self.toggled = self.planes.toggled
        self.ever_x = self.planes.ever_x
        self._activity_armed = False
        self._prev_val = self.planes.prev_val
        self._prev_known = self.planes.prev_known
        #: force store: net -> (val, known); index arrays are
        #: materialized lazily so N forces stay O(N), not O(N^2)
        self._forces: Dict[int, Tuple[bool, bool]] = {}
        self._force_cache: Optional[Tuple[np.ndarray, np.ndarray,
                                          np.ndarray]] = None
        self.incremental = incremental
        self._dirty_limit = max(1, int(incremental_threshold * n))
        self._dirty_nets: set = set()
        self._dirty_groups: set = set()
        self._needs_full = True
        #: settle-path counters (observability / benchmark assertions)
        self.full_settles = 0
        self.incremental_settles = 0
        self.noop_settles = 0
        self._tie_init()

    # -- memories ------------------------------------------------------------
    def attach_memory(self, memory: XMemory) -> XMemory:
        if memory.name in self.memories:
            raise ValueError(f"memory {memory.name!r} already attached")
        self.memories[memory.name] = memory
        return memory

    # -- net access -----------------------------------------------------------
    def set_net(self, net: int, value: Logic) -> None:
        if net in self._forces:
            # the force owns the net until release(); a write-through
            # would resurface after release in settle-timing-dependent
            # ways (and diverge from the event kernel)
            return
        if value.is_known:
            v, k = value is Logic.L1, True
        else:
            v, k = False, False
        if self.val[net] != v or self.known[net] != k:
            self.val[net] = v
            self.known[net] = k
            self._mark_dirty(net)

    def get_net(self, net: int) -> Logic:
        if not self.known[net]:
            return Logic.X
        return Logic.L1 if self.val[net] else Logic.L0

    def set_bus(self, nets: Sequence[int], value: LVec) -> None:
        if len(nets) != value.width:
            raise ValueError("bus width mismatch")
        for net, bit in zip(nets, value.bits):
            self.set_net(net, bit)

    def get_bus(self, nets: Sequence[int]) -> LVec:
        return LVec([self.get_net(n) for n in nets])

    def set_input(self, name: str, value) -> None:
        """Drive a named primary input (scalar Logic/int or LVec)."""
        nl = self.c.netlist
        if isinstance(value, LVec):
            self.set_bus(nl.bus(name, value.width), value)
        else:
            level = value if isinstance(value, Logic) else \
                (Logic.L1 if value else Logic.L0)
            self.set_net(nl.net_index(name), level)

    # -- dirty tracking -------------------------------------------------------
    def _mark_dirty(self, net: int) -> None:
        """A net's value changed: its fanout cone must re-settle; if it
        is gate-driven, the driver re-derives it (so a poke to an
        internal net is transient, exactly as under the full sweep)."""
        self._dirty_nets.add(net)
        drv = self.c.driver[net]
        if drv >= 0:
            grp = self.c.gate_group[drv]
            if grp >= 0:
                self._dirty_groups.add(int(grp))

    def mark_all_dirty(self) -> None:
        """Invalidate incremental state: the next settle is a full sweep.

        Call after writing :attr:`val` / :attr:`known` directly (e.g.
        restoring checkpointed planes) -- bulk writes bypass the per-net
        dirty bookkeeping."""
        self._needs_full = True

    # -- forcing ------------------------------------------------------------
    def force(self, net: int, value: Logic) -> None:
        """Pin a net to ``value`` during settle until :meth:`release`.

        While forced, the net ignores :meth:`set_net`; after release it
        keeps the forced value until re-driven (by its comb driver at
        the next settle, by a flop at the next edge, or by a new
        ``set_net``).
        """
        v = value is Logic.L1
        k = value.is_known
        self._forces[net] = (v, k)
        self._force_cache = None
        if self.val[net] != v or self.known[net] != k:
            # the pin takes effect at the next settle; only the fanout
            # needs re-evaluation, never the (overridden) driver
            self._dirty_nets.add(net)

    def release(self, net: Optional[int] = None) -> None:
        """Remove one force, or all forces when ``net`` is None."""
        if net is None:
            released = list(self._forces)
            self._forces.clear()
        elif net in self._forces:
            released = [net]
            del self._forces[net]
        else:
            return
        self._force_cache = None
        for n in released:
            self._reassert_driver(n)

    def _reassert_driver(self, net: int) -> None:
        """After a release the net's own driver owns it again: schedule
        its group for re-evaluation (ties are re-tied in place; PIs and
        flop outputs keep the last value, as under the full sweep)."""
        drv = self.c.driver[net]
        if drv < 0:
            return
        grp = self.c.gate_group[drv]
        if grp >= 0:
            self._dirty_groups.add(int(grp))
            return
        kind = self.c.netlist.gates[drv].kind
        if kind in ("TIE0", "TIE1"):
            v = kind == "TIE1"
            if self.val[net] != v or not self.known[net]:
                self.val[net] = v
                self.known[net] = True
                self._dirty_nets.add(net)

    def _force_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._force_cache is None:
            n = len(self._forces)
            nets = np.fromiter(self._forces.keys(), dtype=np.int64,
                               count=n)
            vals = np.fromiter((v for v, _ in self._forces.values()),
                               dtype=bool, count=n)
            knowns = np.fromiter((k for _, k in self._forces.values()),
                                 dtype=bool, count=n)
            self._force_cache = (nets, vals, knowns)
        return self._force_cache

    # lazily-materialized views, part of the (test-visible) interface
    @property
    def _force_nets(self) -> np.ndarray:
        return self._force_arrays()[0]

    @property
    def _force_val(self) -> np.ndarray:
        return self._force_arrays()[1]

    @property
    def _force_known(self) -> np.ndarray:
        return self._force_arrays()[2]

    def _apply_forces(self) -> None:
        if self._forces:
            nets, vals, knowns = self._force_arrays()
            self.val[nets] = vals
            self.known[nets] = knowns

    def _force_levels(self):
        """Comb levels that drive a forced net.  Forces are re-asserted
        once after each such level -- pinned before any reader level
        evaluates -- instead of after every group."""
        if not self._forces:
            return ()
        lv = {int(self.c.net_comb_level[n]) for n in self._forces}
        lv.discard(-1)
        return lv

    # -- evaluation ------------------------------------------------------------
    def _tie_init(self) -> None:
        for kind, out in self.c.ties:
            self.val[out] = kind == "TIE1"
            self.known[out] = True

    def _compute_group(self, grp: _Group) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate one (level, kind) group, returning fresh (val, known)
        planes for its output nets (no stores)."""
        val, known = self.val, self.known
        kind = grp.kind
        if kind == "BUF":
            a = grp.ins[0]
            return val[a], known[a]
        if kind == "NOT":
            a = grp.ins[0]
            ka = known[a]
            return ~val[a] & ka, ka
        if kind in ("AND", "NAND"):
            a, b = grp.ins
            va, ka = val[a], known[a]
            vb, kb = val[b], known[b]
            one = va & ka & vb & kb
            zero = (ka & ~va) | (kb & ~vb)
            k = one | zero
            v = one if kind == "AND" else (zero & k)
            return v, k
        if kind in ("OR", "NOR"):
            a, b = grp.ins
            va, ka = val[a], known[a]
            vb, kb = val[b], known[b]
            one = (va & ka) | (vb & kb)
            zero = (ka & ~va) & (kb & ~vb)
            k = one | zero
            v = one if kind == "OR" else zero
            return v, k
        if kind in ("XOR", "XNOR"):
            a, b = grp.ins
            k = known[a] & known[b]
            x = val[a] ^ val[b]
            return (x if kind == "XOR" else ~x) & k, k
        if kind == "MUX2":
            d0, d1, s = grp.ins
            vs, ks = val[s], known[s]
            v0, k0 = val[d0], known[d0]
            v1, k1 = val[d1], known[d1]
            s1 = ks & vs
            s0 = ks & ~vs
            agree = k0 & k1 & (v0 == v1)
            k = (s0 & k0) | (s1 & k1) | (~ks & agree)
            v = ((s0 & v0) | (s1 & v1) | (~ks & agree & v0)) & k
            return v, k
        raise KeyError(f"no vectorized evaluator for {kind!r}")

    def settle(self) -> None:
        """Re-settle combinational logic.

        Incremental mode evaluates only groups in the fanout cone of
        nets dirtied since the last settle, falling back to one full
        topological sweep when the dirty frontier exceeds the
        threshold (or after :meth:`mark_all_dirty`).  Both paths yield
        identical planes -- equivalence is pinned by the randomized
        event-engine cross-tests.
        """
        if not self.incremental or self._needs_full or \
                len(self._dirty_nets) > self._dirty_limit:
            self._settle_full()
            return
        if not self._dirty_nets and not self._dirty_groups:
            self.noop_settles += 1
            return
        self._settle_incremental()

    def _settle_full(self) -> None:
        val, known = self.val, self.known
        self._apply_forces()
        force_levels = self._force_levels()
        for grp in self.c.schedule:
            v, k = self._compute_group(grp)
            val[grp.out] = v
            known[grp.out] = k
            if grp.level in force_levels:
                self._apply_forces()
        self._dirty_nets.clear()
        self._dirty_groups.clear()
        self._needs_full = False
        self.full_settles += 1

    def _settle_incremental(self) -> None:
        c = self.c
        val, known = self.val, self.known
        affected = np.zeros(c.n_groups, dtype=bool)
        ptr, fg = c.fanout_ptr, c.fanout_groups
        for net in self._dirty_nets:
            s, e = ptr[net], ptr[net + 1]
            if s != e:
                affected[fg[s:e]] = True
        for g in self._dirty_groups:
            affected[g] = True
        self._apply_forces()
        force_levels = self._force_levels()
        # groups only feed strictly higher levels, so one forward pass
        # over the schedule reaches the whole cone
        for gi, grp in enumerate(c.schedule):
            if not affected[gi]:
                continue
            out = grp.out
            old_v, old_k = val[out], known[out]   # fancy index == copy
            v, k = self._compute_group(grp)
            val[out] = v
            known[out] = k
            if grp.level in force_levels:
                self._apply_forces()
                v, k = val[out], known[out]
            changed = (v != old_v) | (k != old_k)
            if changed.any():
                for net in out[changed]:
                    s, e = ptr[net], ptr[net + 1]
                    if s != e:
                        affected[fg[s:e]] = True
        self._dirty_nets.clear()
        self._dirty_groups.clear()
        self.incremental_settles += 1

    def clock_edge(self) -> None:
        """Advance all flops one positive edge (synchronous semantics).

        All next-state values are computed from the pre-edge planes
        before any are committed (the vectorized equivalent of the
        event kernel's NBA region) -- a flop chained directly to
        another flop's output must sample its pre-edge value even when
        the two land in different kind groups.
        """
        val, known = self.val, self.known
        staged: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for grp in self.c.flops:
            kind = grp.kind
            out = grp.out
            d = grp.ins[0]
            vd, kd = val[d], known[d]
            vq, kq = val[out], known[out]
            if kind in ("DFFE", "DFFER"):
                e = grp.ins[1]
                ve, ke = val[e], known[e]
                hold_v, hold_k = vq, kq
                agree = kd & kq & (vd == vq)
                nv = np.where(ke, np.where(ve, vd, hold_v), agree & vd)
                nk = np.where(ke, np.where(ve, kd, hold_k), agree)
            else:
                nv, nk = vd.copy(), kd.copy()
            if kind in ("DFFR", "DFFER"):
                r = grp.ins[-1]
                vr, kr = val[r], known[r]
                r_on = kr & vr
                r_off = kr & ~vr
                known_zero = nk & ~nv
                nk = np.where(r_on, True, np.where(r_off, nk, known_zero))
                nv = np.where(r_on, False, np.where(r_off, nv, False))
            staged.append((out, nv, nk))
        for out, nv, nk in staged:
            changed = (nv != val[out]) | (nk != known[out])
            val[out] = nv
            known[out] = nk
            if changed.any():
                self._dirty_nets.update(out[changed].tolist())
        self.cycle += 1

    # -- activity ---------------------------------------------------------------
    def arm_activity(self) -> None:
        """Begin toggle recording (call after reset settles)."""
        self._activity_armed = True
        self._prev_val[:] = self.val
        self._prev_known[:] = self.known

    def record_activity_now(self) -> None:
        if not (self.record_activity and self._activity_armed):
            return
        self.ever_x |= ~self.known
        changed = (self.val != self._prev_val) | \
                  (self.known != self._prev_known)
        self.toggled |= changed
        self._prev_val[:] = self.val
        self._prev_known[:] = self.known

    def exercised_nets(self) -> np.ndarray:
        """Boolean per-net array: net toggled or was ever X."""
        return self.toggled | self.ever_x

    def reset_activity(self) -> None:
        self.toggled[:] = False
        self.ever_x[:] = False
        self._activity_armed = False

    # -- stepping ---------------------------------------------------------------
    def step(self, drive: Optional[Callable[["CycleSim"], None]] = None,
             on_edge: Optional[Callable[["CycleSim"], None]] = None) -> None:
        """One full clock cycle.

        ``drive`` is called between two settle sweeps so a testbench can
        respond combinationally to design outputs (e.g. feed instruction
        words for the fetched address).  ``on_edge`` is called after the
        settled values are final and before flops advance -- the place to
        commit memory writes.

        Activity contract: toggles are recorded after *every* settle
        sweep inside the cycle, so a net that glitches in the first
        sweep and reverts once ``drive`` responds still counts as
        toggled.  Gate-level glitches dissipate real power, so the
        conservative (exercisable-superset) reading is the sound one
        for the paper's pruning flow.
        """
        self.settle()
        if drive is not None:
            self.record_activity_now()
            drive(self)
            self.settle()
        self.record_activity_now()
        if on_edge is not None:
            on_edge(self)
        self.clock_edge()

    # -- snapshots -----------------------------------------------------------
    def snapshot(self, pc: Optional[int] = None) -> SimState:
        sn = self.c.state_nets
        return SimState(
            net_val=(self.val[sn] & self.known[sn]).copy(),
            net_known=self.known[sn].copy(),
            memories={name: mem.snapshot()
                      for name, mem in self.memories.items()},
            cycle=self.cycle,
            pc=pc,
        )

    def restore(self, state: SimState) -> None:
        """Restore a snapshot: state nets and memories are written back,
        all forces are dropped, and comb logic is re-settled (only the
        cone of the state bits that actually differ, in incremental
        mode).

        Restoring with forces still active raises
        :class:`ForcedRestoreWarning`: a force is path-steering context,
        not architectural state, so it does not survive a restore --
        re-apply forces after restore, the way
        :class:`~repro.coanalysis.engine.CoAnalysisEngine` forces the
        branch decision on each forked path.
        """
        sn = self.c.state_nets
        if state.net_val.shape != sn.shape:
            raise ValueError("snapshot does not match this netlist")
        if self._forces:
            # drop the forces (and the _force_cache built from them)
            # BEFORE warning: under warnings-as-errors the warn raises,
            # and releasing first guarantees no stale pin or cached
            # force array survives into the next settle either way
            n_forces = len(self._forces)
            self.release()
            warnings.warn(
                f"restore() with {n_forces} active force(s): "
                f"forces do not survive a restore; re-apply them after "
                f"restoring", ForcedRestoreWarning, stacklevel=2)
        cur_v, cur_k = self.val[sn], self.known[sn]
        changed = (state.net_val != cur_v) | (state.net_known != cur_k)
        if changed.any():
            idx = sn[changed]
            self.val[idx] = state.net_val[changed]
            self.known[idx] = state.net_known[changed]
            self._dirty_nets.update(idx.tolist())
        for name, snap in state.memories.items():
            self.memories[name].restore(snap)
        self.cycle = state.cycle
        self.settle()
        if self._activity_armed:
            self._prev_val[:] = self.val
            self._prev_known[:] = self.known
