"""Lockstep engine comparison.

When porting a design into this tool (or after modifying an engine), the
first question is "do both simulators agree, and if not, where first?".
:func:`lockstep_compare` runs two engines side by side over a stimulus
sequence and reports the first divergence with full context -- the
debugging utility behind the paper's "event list matches the baseline"
validation.

By default the two legs are the event kernel and the vectorized cycle
engine.  ``engines`` swaps either leg: a name (``"event"``,
``"cycle"``, ``"batch"``) builds a fresh simulator -- ``"batch"``
allocates one lane of a :class:`~repro.sim.batch_sim.BatchCycleSim`
and drives its :class:`~repro.sim.batch_sim.LaneView` -- or pass an
already-built CycleSim-compatible object (a ``LaneView`` of a wider
sim, an :class:`~repro.coanalysis.executors.EventSimBridge`, ...)
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from ..logic.value import Logic
from ..netlist.netlist import Netlist
from .cycle_sim import CycleSim, compile_netlist
from .event_sim import EventSim


@dataclass
class Divergence:
    """First point where the two engines disagreed.

    ``event_value``/``cycle_value`` keep their historical names: they
    are the first (reference) and second (candidate) leg's values,
    whatever engines those legs run.
    """

    cycle: int
    net: int
    net_name: str
    event_value: Logic
    cycle_value: Logic

    def __str__(self) -> str:
        return (f"cycle {self.cycle}: net {self.net_name!r} -- "
                f"reference engine {self.event_value}, "
                f"candidate engine {self.cycle_value}")


@dataclass
class CompareResult:
    cycles_run: int
    divergence: Optional[Divergence] = None

    @property
    def equivalent(self) -> bool:
        return self.divergence is None


class _Leg:
    """One comparison leg: an engine plus its stimulus/step dialect."""

    def __init__(self, engine: Union[str, object], netlist: Netlist,
                 compiled):
        if engine == "event":
            engine = EventSim(netlist)
        elif engine == "cycle":
            engine = CycleSim(compiled)
        elif engine == "batch":
            from .batch_sim import BatchCycleSim
            batch = BatchCycleSim(compiled)
            engine = batch.lane_view(batch.alloc_lane())
        elif isinstance(engine, str):
            raise ValueError(f"unknown engine {engine!r}; known: "
                             f"'event', 'cycle', 'batch' (or pass a "
                             f"CycleSim-compatible object)")
        self.sim = engine
        self.event_style = isinstance(engine, EventSim)

    def apply(self, inputs: Dict[str, Logic]) -> None:
        if self.event_style:
            for name, value in inputs.items():
                self.sim.poke_by_name(name, value)
        else:
            for name, value in inputs.items():
                self.sim.set_input(name, value)

    def step(self) -> None:
        if self.event_style:
            self.sim.tick()
            self.sim.settle()
        else:
            self.sim.settle()
            self.sim.clock_edge()
            self.sim.settle()

    def get(self, net: int) -> Logic:
        if self.event_style:
            return self.sim.get_logic(net)
        return self.sim.get_net(net)


def lockstep_compare(netlist: Netlist,
                     stimulus: Sequence[Dict[str, Logic]],
                     check_nets: Optional[Sequence[int]] = None,
                     engines: Tuple[Union[str, object],
                                    Union[str, object]] = ("event",
                                                           "cycle"),
                     ) -> CompareResult:
    """Run both engines over ``stimulus`` (one dict of input-name ->
    value per cycle) and compare every checked net every cycle.

    ``engines`` names (or provides) the reference and candidate legs;
    the default pair reproduces the historical event-vs-cycle check.
    """
    nets = list(check_nets) if check_nets is not None else \
        list(range(len(netlist.nets)))
    compiled = compile_netlist(netlist)
    ref = _Leg(engines[0], netlist, compiled)
    cand = _Leg(engines[1], netlist, compiled)
    for cycle, inputs in enumerate(stimulus):
        ref.apply(inputs)
        cand.apply(inputs)
        ref.step()
        cand.step()
        for net in nets:
            rv = ref.get(net)
            cv = cand.get(net)
            if rv is not cv:
                return CompareResult(
                    cycles_run=cycle + 1,
                    divergence=Divergence(cycle, net,
                                          netlist.net_name(net), rv, cv))
    return CompareResult(cycles_run=len(stimulus))
