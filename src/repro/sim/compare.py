"""Lockstep engine comparison.

When porting a design into this tool (or after modifying an engine), the
first question is "do both simulators agree, and if not, where first?".
:func:`lockstep_compare` runs the event kernel and the vectorized engine
side by side over a stimulus sequence and reports the first divergence
with full context -- the debugging utility behind the paper's
"event list matches the baseline" validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..logic.value import Logic
from ..netlist.netlist import Netlist
from .cycle_sim import CycleSim, compile_netlist
from .event_sim import EventSim


@dataclass
class Divergence:
    """First point where the two engines disagreed."""

    cycle: int
    net: int
    net_name: str
    event_value: Logic
    cycle_value: Logic

    def __str__(self) -> str:
        return (f"cycle {self.cycle}: net {self.net_name!r} -- "
                f"event kernel {self.event_value}, "
                f"cycle engine {self.cycle_value}")


@dataclass
class CompareResult:
    cycles_run: int
    divergence: Optional[Divergence] = None

    @property
    def equivalent(self) -> bool:
        return self.divergence is None


def lockstep_compare(netlist: Netlist,
                     stimulus: Sequence[Dict[str, Logic]],
                     check_nets: Optional[Sequence[int]] = None
                     ) -> CompareResult:
    """Run both engines over ``stimulus`` (one dict of input-name ->
    value per cycle) and compare every checked net every cycle."""
    nets = list(check_nets) if check_nets is not None else \
        list(range(len(netlist.nets)))
    cyc = CycleSim(compile_netlist(netlist))
    evt = EventSim(netlist)
    for cycle, inputs in enumerate(stimulus):
        for name, value in inputs.items():
            cyc.set_input(name, value)
            evt.poke_by_name(name, value)
        cyc.settle()
        cyc.clock_edge()
        evt.tick()
        cyc.settle()
        evt.settle()
        for net in nets:
            ev = evt.get_logic(net)
            cv = cyc.get_net(net)
            if ev is not cv:
                return CompareResult(
                    cycles_run=cycle + 1,
                    divergence=Divergence(cycle, net,
                                          netlist.net_name(net), ev, cv))
    return CompareResult(cycles_run=len(stimulus))
