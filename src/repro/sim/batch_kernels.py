"""Fused numpy kernels compiled from a :class:`CompiledNetlist` schedule.

The serial engine interprets the levelized schedule: one Python-level
dispatch per ``(level, kind)`` group, with the gate semantics chosen by
a chain of ``if kind == ...`` tests on every settle.  For the batched
engine that per-group interpretation overhead is the bottleneck -- the
arrays themselves are small (one word per net) and the work per numpy
op is tiny, so the Python dispatch around each op dominates.

This module removes the interpreter: it *generates Python source* for
the whole schedule once per compiled netlist and ``exec``\\ s it with the
group index arrays bound in the namespace, yielding

* ``sweep(val, known)`` -- the entire combinational schedule as one
  fused function (the no-forces full-settle fast path);
* ``levels`` -- ``[(level, fn), ...]`` with one fused function per
  topological level (the full-settle path when forces must be
  re-asserted between levels);
* ``groups`` -- one function per schedule group returning fresh
  ``(val, known)`` planes for its outputs without storing (the
  incremental dirty-cone path needs the old planes for change
  detection).

Every generated expression is *pure bitwise algebra* -- ``& | ^ ~`` only,
never ``==`` or boolean ``where`` -- so the same kernels evaluate both
the serial engine's bool planes and the batched engine's bit-packed
``uint64`` planes (one bit per lane, 64 independent simulations per
word).  Equivalence with the interpreted evaluators is pinned by the
batch/serial parity tests.
"""

from __future__ import annotations

import weakref
from typing import Callable, List, Tuple

from .cycle_sim import CompiledNetlist

#: gate kinds the generator knows; kept in sync with
#: CycleSim._compute_group (the interpreted reference semantics)
SUPPORTED_KINDS = ("BUF", "NOT", "AND", "NAND", "OR", "NOR",
                   "XOR", "XNOR", "MUX2")


def _group_lines(gid: int, kind: str) -> List[str]:
    """Emit the bitwise body computing ``vv``/``kk`` for one group.

    Reads ``val``/``known`` through the index arrays ``i{gid}_{port}``
    bound in the exec namespace.  Kleene X encoding: a bit is X when
    its ``known`` bit is clear; ``vv`` is always masked by ``kk``.
    """
    a = f"i{gid}_0"
    b = f"i{gid}_1"
    s = f"i{gid}_2"
    if kind == "BUF":
        return [f"vv = val[{a}]",
                f"kk = known[{a}]"]
    if kind == "NOT":
        return [f"kk = known[{a}]",
                f"vv = ~val[{a}] & kk"]
    if kind in ("AND", "NAND"):
        return [f"va = val[{a}]; ka = known[{a}]",
                f"vb = val[{b}]; kb = known[{b}]",
                "one = va & ka & vb & kb",
                "zero = (ka & ~va) | (kb & ~vb)",
                "kk = one | zero",
                "vv = one" if kind == "AND" else "vv = zero"]
    if kind in ("OR", "NOR"):
        return [f"va = val[{a}]; ka = known[{a}]",
                f"vb = val[{b}]; kb = known[{b}]",
                "one = (va & ka) | (vb & kb)",
                "zero = (ka & ~va) & (kb & ~vb)",
                "kk = one | zero",
                "vv = one" if kind == "OR" else "vv = zero"]
    if kind in ("XOR", "XNOR"):
        inv = "" if kind == "XOR" else "~"
        return [f"kk = known[{a}] & known[{b}]",
                f"vv = {inv}(val[{a}] ^ val[{b}]) & kk"]
    if kind == "MUX2":
        # ins = (d0, d1, sel); an X select with agreeing known data
        # legs still yields that value (the Kleene mux)
        return [f"vs = val[{s}]; ks = known[{s}]",
                f"v0 = val[{a}]; k0 = known[{a}]",
                f"v1 = val[{b}]; k1 = known[{b}]",
                "s1 = ks & vs",
                "s0 = ks & ~vs",
                "agree = k0 & k1 & ~(v0 ^ v1)",
                "kk = (s0 & k0) | (s1 & k1) | (~ks & agree)",
                "vv = ((s0 & v0) | (s1 & v1) | (~ks & agree & v0)) & kk"]
    raise KeyError(f"no batch kernel generator for gate kind {kind!r}")


def _stored_lines(gid: int, kind: str) -> List[str]:
    return _group_lines(gid, kind) + [f"val[o{gid}] = vv",
                                      f"known[o{gid}] = kk"]


class BatchKernels:
    """The compiled kernel set for one :class:`CompiledNetlist`."""

    __slots__ = ("sweep", "levels", "groups", "source")

    def __init__(self, sweep: Callable, levels: List[Tuple[int, Callable]],
                 groups: List[Callable], source: str):
        #: fused function evaluating the whole comb schedule in order
        self.sweep = sweep
        #: ``(level, fn)`` pairs, one fused function per topological level
        self.levels = levels
        #: per-group functions returning ``(vv, kk)`` without storing,
        #: aligned with ``compiled.schedule``
        self.groups = groups
        #: the generated source, kept for debuggability
        self.source = source


def build_kernels(compiled: CompiledNetlist,
                  n_words: int = 1) -> BatchKernels:
    """Generate and compile the fused kernel set for ``compiled``.

    ``n_words`` is the batched engine's plane width in uint64 words
    (lanes / 64); the serial bool planes are ``n_words=1``.  The emitted
    algebra is width-independent -- nets index axis 0 and the ops
    broadcast over the word axis -- but each width gets its own compile
    unit (and cache slot) so a 256-lane run can never alias a 64-lane
    kernel's code object in tracebacks or profiles.
    """
    ns: dict = {}
    for gi, grp in enumerate(compiled.schedule):
        for port, arr in enumerate(grp.ins):
            ns[f"i{gi}_{port}"] = arr
        ns[f"o{gi}"] = grp.out

    lines: List[str] = []

    def emit(header: str, body: List[str]) -> None:
        lines.append(header)
        for stmt in (body or ["pass"]):
            lines.append("    " + stmt)

    for gi, grp in enumerate(compiled.schedule):
        emit(f"def group{gi}(val, known):",
             _group_lines(gi, grp.kind) + ["return vv, kk"])

    by_level: dict = {}
    for gi, grp in enumerate(compiled.schedule):
        by_level.setdefault(grp.level, []).append(gi)
    for lvl in sorted(by_level):
        body: List[str] = []
        for gi in by_level[lvl]:
            body.extend(_stored_lines(gi, compiled.schedule[gi].kind))
        emit(f"def level{lvl}(val, known):", body)

    sweep_body: List[str] = []
    for gi, grp in enumerate(compiled.schedule):
        sweep_body.extend(_stored_lines(gi, grp.kind))
    emit("def sweep(val, known):", sweep_body)

    source = "\n".join(lines)
    exec(compile(source, f"<batch-kernels-w{n_words}>", "exec"), ns)
    return BatchKernels(
        sweep=ns["sweep"],
        levels=[(lvl, ns[f"level{lvl}"]) for lvl in sorted(by_level)],
        groups=[ns[f"group{gi}"] for gi in range(len(compiled.schedule))],
        source=source)


#: per-process kernel cache keyed by compiled-netlist identity and
#: plane word count; a CompiledNetlist is immutable, so identity is a
#: sound cache key
_KERNEL_CACHE: "weakref.WeakKeyDictionary[CompiledNetlist, dict]" \
    = weakref.WeakKeyDictionary()


def batch_kernels_for(compiled: CompiledNetlist,
                      n_words: int = 1) -> BatchKernels:
    """Kernel set for ``(compiled, n_words)``, generated once and cached."""
    by_width = _KERNEL_CACHE.get(compiled)
    if by_width is None:
        by_width = _KERNEL_CACHE[compiled] = {}
    kernels = by_width.get(n_words)
    if kernels is None:
        kernels = by_width[n_words] = build_kernels(compiled, n_words)
    return kernels
