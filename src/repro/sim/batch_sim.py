"""Lane-parallel cycle simulation: many forked states per settle.

The co-analysis frontier is full of *near-identical* states -- every
fork copies its parent and diverges by one branch decision.  The serial
engine settles them one at a time, paying the full numpy dispatch cost
per state.  :class:`BatchCycleSim` packs up to ``lanes`` independent
simulations into the same arrays the serial engine uses: every net's
``(val, known)`` pair becomes ``n_words = lanes / 64`` ``uint64`` words
per plane (:class:`~repro.sim.planes.LanePlanes`), **one bit per
lane**.  A single fused settle (see :mod:`repro.sim.batch_kernels`)
then advances every lane at once -- bitwise ``& | ^ ~`` on uint64 words
is lane-parallel for free, the GSIM-style batched-kernel trick -- and
widening the wave from 64 to 128 or 256 lanes only grows the word axis
the same ops already broadcast over.

Lane lifecycle maps onto Algorithm 1 directly:

* **fork** -- :meth:`BatchCycleSim.fork_lane` copies one bit column
  (plus memories) into a free lane;
* **merge / prune** -- :meth:`BatchCycleSim.drop_lane` releases the
  lane; its bits become garbage that every consumer masks out;
* **explore** -- all live lanes advance in lockstep through
  ``settle()`` / ``clock_edge()``.

Incremental settling reuses the compiled fanout-cone CSR index with
*per-lane dirty masks*: each dirty net remembers **which lanes**
changed it (a lane-mask int), the union over lanes picks the schedule
groups to re-evaluate (evaluating a group costs the same for 1 or 256
lanes -- that is the whole point), and change propagation is detected
per lane with packed XORs masked to the live lanes.

Per-lane state that cannot live in the bit planes -- cycle counters,
attached :class:`~repro.sim.memory.XMemory` instances, forces,
activity arming -- is kept in small per-lane tables.
:class:`LaneView` wraps ``(sim, lane)`` as a CycleSim-compatible
facade so targets, harnesses and tests drive one lane without knowing
about the packing.  Parity with the serial engine is pinned by the
batch/serial equivalence tests.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..logic.value import Logic
from ..logic.vector import LVec
from .batch_kernels import batch_kernels_for
from .cycle_sim import CompiledNetlist, ForcedRestoreWarning
from .memory import XMemory
from .planes import (LANE_WORD, M64, LanePlanes, column_bits, lane_word_bit,
                     words_to_int)
from .state import SimState

#: default lane capacity (one plane word); pass ``lanes=128/256/...``
#: to :class:`BatchCycleSim` for wider waves
LANE_CAPACITY = 64


class LaneCapacityError(RuntimeError):
    """All lanes of a :class:`BatchCycleSim` are in use."""


def _clone_memory(mem: XMemory) -> XMemory:
    clone = XMemory(mem.words, mem.width, name=mem.name)
    clone.restore(mem.snapshot())
    return clone


class BatchCycleSim:
    """Bit-packed lane-parallel four-valued simulator.

    The planes are ``(n_nets, n_words)`` uint64 arrays; bit ``b`` of
    word ``w`` in row ``i`` is net ``i``'s value in lane
    ``w * 64 + b``.  All lane-global operations (:meth:`settle`,
    :meth:`clock_edge`, :meth:`record_activity_now`) advance every live
    lane in lockstep; per-lane mutation and observation go through the
    ``lane_*`` methods or a :class:`LaneView`.

    Args mirror :class:`~repro.sim.cycle_sim.CycleSim`, plus:

    Args:
        lanes: lane capacity; a positive multiple of 64 (each 64 lanes
            add one uint64 word to every plane row).
    """

    def __init__(self, compiled: CompiledNetlist,
                 record_activity: bool = True,
                 incremental: bool = True,
                 incremental_threshold: float = 0.25,
                 lanes: int = LANE_CAPACITY):
        self.c = compiled
        self.planes = LanePlanes(compiled.n_nets, lanes)
        #: lane capacity of this instance
        self.capacity = self.planes.lanes
        #: plane words per net (capacity / 64)
        self.n_words = self.planes.n_words
        self._full = self.planes.full_mask
        self.kernels = batch_kernels_for(compiled, self.n_words)
        n = compiled.n_nets
        self.val = self.planes.val
        self.known = self.planes.known
        #: bitmask of live lanes (python int)
        self.active_mask = 0
        self.lane_cycle: List[int] = [0] * self.capacity
        self.lane_memories: Dict[int, Dict[str, XMemory]] = {}
        self.record_activity = record_activity
        self.toggled = self.planes.toggled
        self.ever_x = self.planes.ever_x
        self._armed_mask = 0
        self._prev_val = self.planes.prev_val
        self._prev_known = self.planes.prev_known
        #: force store: net -> [lane_mask, val_bits, known_bits]
        #: (``val_bits``/``known_bits`` are subsets of ``lane_mask``)
        self._forces: Dict[int, List[int]] = {}
        self._force_cache: Optional[Tuple[np.ndarray, np.ndarray,
                                          np.ndarray, np.ndarray]] = None
        self.incremental = incremental
        self._dirty_limit = max(1, int(incremental_threshold * n))
        #: per-lane dirty masks: net -> bitmask of lanes that changed it
        self._dirty: Dict[int, int] = {}
        self._dirty_groups: set = set()
        self._needs_full = True
        self.full_settles = 0
        self.incremental_settles = 0
        self.noop_settles = 0

    # -- lane lifecycle -----------------------------------------------------
    @property
    def n_lanes(self) -> int:
        return bin(self.active_mask).count("1")

    def active_lanes(self) -> Iterator[int]:
        """Live lane indices, lowest first."""
        mask = self.active_mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def _free_lane(self) -> int:
        free = ~self.active_mask & self._full
        if not free:
            raise LaneCapacityError(
                f"all {self.capacity} lanes in use; drop or merge a "
                f"lane before forking")
        return (free & -free).bit_length() - 1

    def alloc_lane(self) -> int:
        """Claim a fresh lane: everything X except tie cells, cycle 0."""
        lane = self._free_lane()
        bit = 1 << lane
        self.active_mask |= bit
        self.planes.clear_lane(lane)
        w, b = lane_word_bit(lane)
        m = np.uint64(1 << b)
        for kind, out in self.c.ties:
            if kind == "TIE1":
                self.val[out, w] |= m
            self.known[out, w] |= m
        self.lane_cycle[lane] = 0
        self.lane_memories[lane] = {}
        self._armed_mask &= ~bit
        # the lane's comb bits are garbage from a previous occupant;
        # one full sweep re-derives them (cheap amortized over a wave)
        self._needs_full = True
        return lane

    def fork_lane(self, src: int) -> int:
        """Copy lane ``src`` -- planes, memories, cycle, forces, arming --
        into a free lane and return it (Algorithm 1's path fork)."""
        self._check_lane(src)
        lane = self._free_lane()
        bit = 1 << lane
        self.active_mask |= bit
        self.planes.copy_lane(src, lane)
        self.lane_cycle[lane] = self.lane_cycle[src]
        self.lane_memories[lane] = {
            name: _clone_memory(mem)
            for name, mem in self.lane_memories[src].items()}
        src_bit = 1 << src
        if self._armed_mask & src_bit:
            self._armed_mask |= bit
        else:
            self._armed_mask &= ~bit
        for entry in self._forces.values():
            if entry[0] & src_bit:
                entry[0] |= bit
                if entry[1] & src_bit:
                    entry[1] |= bit
                if entry[2] & src_bit:
                    entry[2] |= bit
                self._force_cache = None
        # the clone inherits any pending (unsettled) dirt of its source
        for net, lanes in self._dirty.items():
            if lanes & src_bit:
                self._dirty[net] = lanes | bit
        return lane

    def drop_lane(self, lane: int) -> None:
        """Release a lane (merge/prune): its bits become masked garbage."""
        self._check_lane(lane)
        bit = 1 << lane
        self.active_mask &= ~bit
        self._armed_mask &= ~bit
        self.lane_memories.pop(lane, None)
        self._strip_forces(bit, reassert=False)

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.capacity or \
                not (self.active_mask >> lane) & 1:
            raise ValueError(f"lane {lane} is not active")

    def lane_view(self, lane: int) -> "LaneView":
        self._check_lane(lane)
        return LaneView(self, lane)

    # -- per-lane net access --------------------------------------------------
    def lane_set_net(self, lane: int, net: int, value: Logic) -> None:
        bit = 1 << lane
        entry = self._forces.get(net)
        if entry is not None and entry[0] & bit:
            return   # the force owns this lane's bit until release()
        if value.is_known:
            v, k = value is Logic.L1, True
        else:
            v, k = False, False
        w, wb = lane_word_bit(lane)
        wbit = 1 << wb
        word_v = int(self.val[net, w])
        word_k = int(self.known[net, w])
        if bool(word_v & wbit) != v or bool(word_k & wbit) != k:
            self.val[net, w] = np.uint64((word_v | wbit) if v
                                         else (word_v & ~wbit))
            self.known[net, w] = np.uint64((word_k | wbit) if k
                                           else (word_k & ~wbit))
            self._mark_dirty(net, bit)

    def lane_get_net(self, lane: int, net: int) -> Logic:
        w, wb = lane_word_bit(lane)
        wbit = 1 << wb
        if not int(self.known[net, w]) & wbit:
            return Logic.X
        return Logic.L1 if int(self.val[net, w]) & wbit else Logic.L0

    def lane_get_bus(self, lane: int, nets: Sequence[int]) -> LVec:
        idx = np.asarray(nets, dtype=np.int64)
        w, wb = lane_word_bit(lane)
        sh, one = np.uint64(wb), np.uint64(1)
        vals = ((self.val[idx, w] >> sh) & one).tolist()
        knowns = ((self.known[idx, w] >> sh) & one).tolist()
        return LVec([(Logic.L1 if v else Logic.L0) if k else Logic.X
                     for v, k in zip(vals, knowns)])

    # -- dirty tracking -------------------------------------------------------
    def _mark_dirty(self, net: int, lane_bits: int) -> None:
        self._dirty[net] = self._dirty.get(net, 0) | lane_bits
        drv = self.c.driver[net]
        if drv >= 0:
            grp = self.c.gate_group[drv]
            if grp >= 0:
                self._dirty_groups.add(int(grp))

    def mark_all_dirty(self) -> None:
        """Invalidate incremental state: the next settle is a full sweep."""
        self._needs_full = True

    # -- forcing ------------------------------------------------------------
    def lane_force(self, lane: int, net: int, value: Logic) -> None:
        """Pin ``net`` to ``value`` in one lane only (path steering)."""
        bit = 1 << lane
        v = value is Logic.L1
        k = value.is_known
        entry = self._forces.setdefault(net, [0, 0, 0])
        entry[0] |= bit
        entry[1] = (entry[1] | bit) if v else (entry[1] & ~bit)
        entry[2] = (entry[2] | bit) if k else (entry[2] & ~bit)
        self._force_cache = None
        w, wb = lane_word_bit(lane)
        wbit = 1 << wb
        word_v = int(self.val[net, w])
        word_k = int(self.known[net, w])
        if bool(word_v & wbit) != v or bool(word_k & wbit) != k:
            self._dirty[net] = self._dirty.get(net, 0) | bit

    def lane_release(self, lane: int, net: Optional[int] = None) -> None:
        """Remove one lane's force on ``net``, or all its forces."""
        bit = 1 << lane
        if net is None:
            self._strip_forces(bit, reassert=True)
            return
        entry = self._forces.get(net)
        if entry is None or not entry[0] & bit:
            return
        entry[0] &= ~bit
        entry[1] &= ~bit
        entry[2] &= ~bit
        if not entry[0]:
            del self._forces[net]
        self._force_cache = None
        self._reassert_driver(net, bit)

    def lane_forced_nets(self, lane: int) -> List[int]:
        bit = 1 << lane
        return [net for net, entry in self._forces.items()
                if entry[0] & bit]

    def _strip_forces(self, lane_bit: int, reassert: bool) -> None:
        released = []
        for net, entry in list(self._forces.items()):
            if not entry[0] & lane_bit:
                continue
            entry[0] &= ~lane_bit
            entry[1] &= ~lane_bit
            entry[2] &= ~lane_bit
            if not entry[0]:
                del self._forces[net]
            released.append(net)
        if released:
            self._force_cache = None
            if reassert:
                for net in released:
                    self._reassert_driver(net, lane_bit)

    def _reassert_driver(self, net: int, lane_bit: int) -> None:
        """After a release the net's driver owns the lane's bit again."""
        drv = self.c.driver[net]
        if drv < 0:
            return
        grp = self.c.gate_group[drv]
        if grp >= 0:
            self._dirty_groups.add(int(grp))
            return
        kind = self.c.netlist.gates[drv].kind
        if kind in ("TIE0", "TIE1"):
            want = kind == "TIE1"
            lane = lane_bit.bit_length() - 1
            w, wb = lane_word_bit(lane)
            wbit = 1 << wb
            word_v = int(self.val[net, w])
            word_k = int(self.known[net, w])
            if bool(word_v & wbit) != want or not word_k & wbit:
                self.val[net, w] = np.uint64((word_v | wbit) if want
                                             else (word_v & ~wbit))
                self.known[net, w] = np.uint64(word_k | wbit)
                self._dirty[net] = self._dirty.get(net, 0) | lane_bit

    def _force_arrays(self):
        if self._force_cache is None:
            n = len(self._forces)
            n_words = self.n_words
            nets = np.fromiter(self._forces.keys(), dtype=np.int64,
                               count=n)
            masks = np.zeros((n, n_words), dtype=np.uint64)
            vbits = np.zeros((n, n_words), dtype=np.uint64)
            kbits = np.zeros((n, n_words), dtype=np.uint64)
            for i, entry in enumerate(self._forces.values()):
                for w in range(n_words):
                    sh = LANE_WORD * w
                    masks[i, w] = (entry[0] >> sh) & M64
                    vbits[i, w] = (entry[1] >> sh) & M64
                    kbits[i, w] = (entry[2] >> sh) & M64
            self._force_cache = (nets, masks, vbits, kbits)
        return self._force_cache

    def _apply_forces(self) -> None:
        if self._forces:
            nets, masks, vbits, kbits = self._force_arrays()
            self.val[nets] = (self.val[nets] & ~masks) | vbits
            self.known[nets] = (self.known[nets] & ~masks) | kbits

    def _force_levels(self):
        if not self._forces:
            return ()
        levels = {int(self.c.net_comb_level[n]) for n in self._forces}
        levels.discard(-1)
        return levels

    # -- settling ------------------------------------------------------------
    def settle(self) -> None:
        """Re-settle combinational logic across all lanes at once."""
        if not self.incremental or self._needs_full or \
                len(self._dirty) > self._dirty_limit:
            self._settle_full()
            return
        if not self._dirty and not self._dirty_groups:
            self.noop_settles += 1
            return
        self._settle_incremental()

    def _settle_full(self) -> None:
        self._apply_forces()
        if self._forces:
            force_levels = self._force_levels()
            for level, kernel in self.kernels.levels:
                kernel(self.val, self.known)
                if level in force_levels:
                    self._apply_forces()
        else:
            # the fused whole-schedule kernel: no per-level dispatch
            self.kernels.sweep(self.val, self.known)
        self._dirty.clear()
        self._dirty_groups.clear()
        self._needs_full = False
        self.full_settles += 1

    def _settle_incremental(self) -> None:
        c = self.c
        val, known = self.val, self.known
        active = self.planes.mask_words(self.active_mask)
        affected = np.zeros(c.n_groups, dtype=bool)
        ptr, fanout = c.fanout_ptr, c.fanout_groups
        # the union over per-lane dirty masks picks the groups: one
        # packed evaluation covers every lane, so a group is either
        # re-run for all lanes or for none
        for net in self._dirty:
            start, end = ptr[net], ptr[net + 1]
            if start != end:
                affected[fanout[start:end]] = True
        for grp in self._dirty_groups:
            affected[grp] = True
        self._apply_forces()
        force_levels = self._force_levels()
        group_kernels = self.kernels.groups
        for gi, grp in enumerate(c.schedule):
            if not affected[gi]:
                continue
            out = grp.out
            old_v, old_k = val[out], known[out]   # fancy index == copy
            new_v, new_k = group_kernels[gi](val, known)
            val[out] = new_v
            known[out] = new_k
            if grp.level in force_levels:
                self._apply_forces()
                new_v, new_k = val[out], known[out]
            # per-lane change detection: only live lanes propagate
            changed = ((new_v ^ old_v) | (new_k ^ old_k)) & active
            if changed.any():
                for pos in np.nonzero(changed.any(axis=1))[0]:
                    net = int(out[pos])
                    start, end = ptr[net], ptr[net + 1]
                    if start != end:
                        affected[fanout[start:end]] = True
        self._dirty.clear()
        self._dirty_groups.clear()
        self.incremental_settles += 1

    def clock_edge(self) -> None:
        """One positive edge for every live lane (staged NBA commit)."""
        val, known = self.val, self.known
        active = self.planes.mask_words(self.active_mask)
        staged: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for grp in self.c.flops:
            kind = grp.kind
            out = grp.out
            d = grp.ins[0]
            vd, kd = val[d], known[d]
            if kind in ("DFFE", "DFFER"):
                vq, kq = val[out], known[out]
                e = grp.ins[1]
                ve, ke = val[e], known[e]
                agree = kd & kq & ~(vd ^ vq)
                nv = (ke & ((ve & vd) | (~ve & vq))) | (~ke & agree & vd)
                nk = (ke & ((ve & kd) | (~ve & kq))) | (~ke & agree)
            else:
                nv, nk = vd, kd
            if kind in ("DFFR", "DFFER"):
                r = grp.ins[-1]
                vr, kr = val[r], known[r]
                r_on = kr & vr
                r_off = kr & ~vr
                known_zero = nk & ~nv        # X reset: keep only known-0
                nk = r_on | (r_off & nk) | (~kr & known_zero)
                nv = r_off & nv
            staged.append((out, nv, nk))
        for out, nv, nk in staged:
            changed = ((nv ^ val[out]) | (nk ^ known[out])) & active
            val[out] = nv
            known[out] = nk
            if changed.any():
                dirty = self._dirty
                for pos in np.nonzero(changed.any(axis=1))[0]:
                    net = int(out[pos])
                    dirty[net] = dirty.get(net, 0) \
                        | words_to_int(changed[pos])
        for lane in self.active_lanes():
            self.lane_cycle[lane] += 1

    # -- activity ---------------------------------------------------------------
    def lane_arm_activity(self, lane: int) -> None:
        bit = 1 << lane
        self._armed_mask |= bit
        self._blend_prev(self.planes.lane_mask_words(lane))

    def _blend_prev(self, mask: np.ndarray) -> None:
        inv = ~mask
        self._prev_val &= inv
        self._prev_val |= self.val & mask
        self._prev_known &= inv
        self._prev_known |= self.known & mask

    def record_activity_now(self, lane_bits: Optional[int] = None) -> None:
        """Record toggles/Xs for all armed lanes (or a subset)."""
        if not self.record_activity:
            return
        mask_int = self._armed_mask if lane_bits is None \
            else self._armed_mask & lane_bits
        if not mask_int:
            return
        mask = self.planes.mask_words(mask_int)
        self.ever_x |= ~self.known & mask
        self.toggled |= ((self.val ^ self._prev_val)
                         | (self.known ^ self._prev_known)) & mask
        self._blend_prev(mask)

    def lane_reset_activity(self, lane: int) -> None:
        bit = 1 << lane
        w, wb = lane_word_bit(lane)
        inv = np.uint64(~(1 << wb) & M64)
        self.toggled[:, w] &= inv
        self.ever_x[:, w] &= inv
        self._armed_mask &= ~bit

    def lane_planes(self, lane: int) -> Tuple[np.ndarray, np.ndarray]:
        """This lane's ``(val, known)`` as bool arrays."""
        return (column_bits(self.val, lane),
                column_bits(self.known, lane))

    def lane_activity(self, lane: int) -> Tuple[np.ndarray, np.ndarray]:
        """This lane's ``(toggled, ever_x)`` as bool arrays."""
        return (column_bits(self.toggled, lane),
                column_bits(self.ever_x, lane))

    def lane_exercised(self, lane: int) -> np.ndarray:
        return column_bits(self.toggled | self.ever_x, lane)

    # -- snapshots -----------------------------------------------------------
    def lane_snapshot(self, lane: int,
                      pc: Optional[int] = None) -> SimState:
        """One lane's state in the exact serial SimState layout."""
        sn = self.c.state_nets
        w, wb = lane_word_bit(lane)
        sh, one = np.uint64(wb), np.uint64(1)
        val = ((self.val[sn, w] >> sh) & one).astype(bool)
        known = ((self.known[sn, w] >> sh) & one).astype(bool)
        return SimState(
            net_val=val & known,
            net_known=known,
            memories={name: mem.snapshot()
                      for name, mem in self.lane_memories[lane].items()},
            cycle=self.lane_cycle[lane],
            pc=pc,
        )

    def lane_restore(self, lane: int, state: SimState,
                     settle: bool = True) -> None:
        """Restore a (serial-compatible) snapshot into one lane.

        Active forces on the lane are dropped *before* the
        :class:`ForcedRestoreWarning` is issued, so even a
        warnings-as-errors escalation cannot leave stale pins behind.
        With ``settle=False`` the caller batches the re-settle across
        several lane restores (the wave-setup fast path).
        """
        sn = self.c.state_nets
        if state.net_val.shape != sn.shape:
            raise ValueError("snapshot does not match this netlist")
        bit = 1 << lane
        forced = self.lane_forced_nets(lane)
        if forced:
            self.lane_release(lane)
            warnings.warn(
                f"restore() with {len(forced)} active force(s) on lane "
                f"{lane}: forces do not survive a restore; re-apply "
                f"them after restoring", ForcedRestoreWarning,
                stacklevel=2)
        w, wb = lane_word_bit(lane)
        sh, one = np.uint64(wb), np.uint64(1)
        cur_v = (self.val[sn, w] >> sh) & one
        cur_k = (self.known[sn, w] >> sh) & one
        new_v = state.net_val.astype(np.uint64)
        new_k = state.net_known.astype(np.uint64)
        changed = ((cur_v ^ new_v) | (cur_k ^ new_k)).astype(bool)
        if changed.any():
            idx = sn[changed]
            inv = np.uint64(~(1 << wb) & M64)
            self.val[idx, w] = (self.val[idx, w] & inv) \
                | (new_v[changed] << sh)
            self.known[idx, w] = (self.known[idx, w] & inv) \
                | (new_k[changed] << sh)
            dirty = self._dirty
            for net in idx.tolist():
                dirty[net] = dirty.get(net, 0) | bit
        memories = self.lane_memories[lane]
        for name, snap in state.memories.items():
            memories[name].restore(snap)
        self.lane_cycle[lane] = state.cycle
        if settle:
            self.settle()
        if self._armed_mask & bit:
            self._blend_prev(self.planes.lane_mask_words(lane))


class LaneView:
    """CycleSim-compatible facade over one lane of a BatchCycleSim.

    Harnesses and targets drive a lane through this view exactly as
    they would a serial :class:`~repro.sim.cycle_sim.CycleSim`.  Note
    that :meth:`settle` and :meth:`clock_edge` are *lane-global* -- all
    live lanes advance in lockstep (which is the point); per-lane reads,
    writes, forces, activity and snapshots touch only this lane.
    """

    __slots__ = ("b", "lane")

    def __init__(self, batch: BatchCycleSim, lane: int):
        self.b = batch
        self.lane = lane

    # -- shared structure ---------------------------------------------------
    @property
    def c(self) -> CompiledNetlist:
        return self.b.c

    @property
    def cycle(self) -> int:
        return self.b.lane_cycle[self.lane]

    @property
    def memories(self) -> Dict[str, XMemory]:
        return self.b.lane_memories[self.lane]

    def attach_memory(self, memory: XMemory) -> XMemory:
        memories = self.b.lane_memories[self.lane]
        if memory.name in memories:
            raise ValueError(f"memory {memory.name!r} already attached")
        memories[memory.name] = memory
        return memory

    # -- net access -----------------------------------------------------------
    def set_net(self, net: int, value: Logic) -> None:
        self.b.lane_set_net(self.lane, net, value)

    def get_net(self, net: int) -> Logic:
        return self.b.lane_get_net(self.lane, net)

    def set_bus(self, nets: Sequence[int], value: LVec) -> None:
        if len(nets) != value.width:
            raise ValueError("bus width mismatch")
        for net, bitval in zip(nets, value.bits):
            self.b.lane_set_net(self.lane, net, bitval)

    def get_bus(self, nets: Sequence[int]) -> LVec:
        return self.b.lane_get_bus(self.lane, nets)

    def set_input(self, name: str, value) -> None:
        nl = self.b.c.netlist
        if isinstance(value, LVec):
            self.set_bus(nl.bus(name, value.width), value)
        else:
            level = value if isinstance(value, Logic) else \
                (Logic.L1 if value else Logic.L0)
            self.set_net(nl.net_index(name), level)

    # -- value planes (per-lane bool views) ---------------------------------
    @property
    def val(self) -> np.ndarray:
        return self.b.lane_planes(self.lane)[0]

    @property
    def known(self) -> np.ndarray:
        return self.b.lane_planes(self.lane)[1]

    @property
    def toggled(self) -> np.ndarray:
        return self.b.lane_activity(self.lane)[0]

    @property
    def ever_x(self) -> np.ndarray:
        return self.b.lane_activity(self.lane)[1]

    # -- lockstep stepping ----------------------------------------------------
    def settle(self) -> None:
        self.b.settle()

    def clock_edge(self) -> None:
        self.b.clock_edge()

    def mark_all_dirty(self) -> None:
        self.b.mark_all_dirty()

    def step(self, drive: Optional[Callable[["LaneView"], None]] = None,
             on_edge: Optional[Callable[["LaneView"], None]] = None
             ) -> None:
        """One clock cycle (lane-global settle/edge; see class docs)."""
        batch = self.b
        batch.settle()
        if drive is not None:
            batch.record_activity_now(1 << self.lane)
            drive(self)
            batch.settle()
        batch.record_activity_now(1 << self.lane)
        if on_edge is not None:
            on_edge(self)
        batch.clock_edge()

    # -- forcing --------------------------------------------------------------
    def force(self, net: int, value: Logic) -> None:
        self.b.lane_force(self.lane, net, value)

    def release(self, net: Optional[int] = None) -> None:
        self.b.lane_release(self.lane, net)

    # -- activity -------------------------------------------------------------
    def arm_activity(self) -> None:
        self.b.lane_arm_activity(self.lane)

    def record_activity_now(self) -> None:
        self.b.record_activity_now(1 << self.lane)

    def exercised_nets(self) -> np.ndarray:
        return self.b.lane_exercised(self.lane)

    def reset_activity(self) -> None:
        self.b.lane_reset_activity(self.lane)

    # -- snapshots ------------------------------------------------------------
    def snapshot(self, pc: Optional[int] = None) -> SimState:
        return self.b.lane_snapshot(self.lane, pc=pc)

    def restore(self, state: SimState) -> None:
        self.b.lane_restore(self.lane, state)
