"""System tasks: ``$monitor_x`` and ``$initialize_state``.

The paper adds two system tasks to iverilog (section 3.2):

* ``$monitor_x(signals)`` -- watch a list of control-flow signals and halt
  the simulation, from the Symbolic event region, when any of them carries
  an ``X`` (optionally gated by a qualifier signal such as "a PC-changing
  instruction is resolving now").
* ``$initialize_state(state)`` -- override the processor and simulator
  state with a previously saved one and continue simulation.

Both tasks keep the paper's file-based interface (Listing 1 passes
``control_signals.ini`` / ``sim_state.log``) alongside a direct in-memory
API, so testbenches can be written either way.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..logic.value import Logic
from .events import HaltSimulation
from .event_sim import EventSim


def parse_signal_list(text: str) -> List[str]:
    """Parse a ``control_signals.ini`` body: one signal per line,
    ``#`` comments, blank lines ignored."""
    signals = []
    for line in text.splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            signals.append(line)
    return signals


class MonitorX:
    """The ``$monitor_x`` task.

    Attach to an :class:`EventSim` via ``sim.add_symbolic_task(monitor)``.
    Runs in the Symbolic region of every time step; when the qualifier is
    true (or absent) and any monitored signal is ``X``, raises
    :class:`HaltSimulation` with reason ``"monitor_x"``.
    """

    def __init__(self, signals: Union[str, Path, Sequence[str]],
                 qualifier: Optional[str] = None):
        if isinstance(signals, (str, Path)) and Path(signals).exists():
            names = parse_signal_list(Path(signals).read_text())
        elif isinstance(signals, str):
            names = parse_signal_list(signals)
        else:
            names = list(signals)
        if not names:
            raise ValueError("monitor_x needs at least one signal")
        self.signal_names = names
        self.qualifier = qualifier
        self.triggered_signals: List[str] = []
        self.halt_count = 0

    def __call__(self, sim: EventSim) -> None:
        if self.qualifier is not None:
            if sim.get_logic_by_name(self.qualifier) is not Logic.L1:
                return
        unknown = [name for name in self.signal_names
                   if not sim.get_logic_by_name(name).is_known]
        if unknown:
            self.triggered_signals = unknown
            self.halt_count += 1
            raise HaltSimulation("monitor_x")


class InitializeState:
    """The ``$initialize_state`` task (direct-call form).

    Restores a saved state into a simulator.  The file form serializes
    through JSON with four-valued values spelled ``0/1/x/z`` -- adequate
    for the plain-X domain the co-analysis flow uses.
    """

    def __init__(self, state_file: Optional[Union[str, Path]] = None):
        self.state_file = Path(state_file) if state_file else None

    def __call__(self, sim: EventSim,
                 state: Optional[dict] = None) -> None:
        if state is None:
            if self.state_file is None:
                raise ValueError("no state or state file given")
            state = load_state_file(self.state_file)
        sim.restore_state(state)


def save_state_file(path: Union[str, Path], state: dict) -> None:
    """Write a ``sim_state.log``-style file for hand-off between simulator
    instances (the paper forks new iverilog processes from these)."""
    encoded = {
        "netlist": state["netlist"],
        "cycle": state["cycle"],
        "values": "".join(str(v) for v in state["values"]),
    }
    Path(path).write_text(json.dumps(encoded))


def load_state_file(path: Union[str, Path]) -> dict:
    encoded = json.loads(Path(path).read_text())
    values = [ {"0": Logic.L0, "1": Logic.L1,
                "x": Logic.X, "z": Logic.Z}[ch]
               for ch in encoded["values"] ]
    return {
        "netlist": encoded["netlist"],
        "cycle": encoded["cycle"],
        "values": values,
    }
