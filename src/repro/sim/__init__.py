"""Simulation engines, state management, memories, and system tasks."""

from .activity import ToggleProfile
from .batch_kernels import BatchKernels, batch_kernels_for
from .batch_sim import (LANE_CAPACITY, BatchCycleSim, LaneCapacityError,
                        LaneView)
from .cycle_sim import (CompiledNetlist, CycleSim, ForcedRestoreWarning,
                        compile_netlist)
from .events import EventScheduler, HaltSimulation, Region
from .event_sim import (EventSim, LabeledSymbolDomain, PlainXDomain,
                        ValueDomain)
from .memory import XMemory
from .planes import LANE_WORD, BoolPlanes, LanePlanes
from .state import SimState
from .tasks import (InitializeState, MonitorX, load_state_file,
                    parse_signal_list, save_state_file)

__all__ = [
    "ToggleProfile",
    "BatchKernels", "batch_kernels_for",
    "LANE_CAPACITY", "BatchCycleSim", "LaneCapacityError", "LaneView",
    "CompiledNetlist", "CycleSim", "ForcedRestoreWarning",
    "compile_netlist",
    "EventScheduler", "HaltSimulation", "Region",
    "EventSim", "PlainXDomain", "LabeledSymbolDomain", "ValueDomain",
    "LANE_WORD", "BoolPlanes", "LanePlanes",
    "XMemory", "SimState",
    "MonitorX", "InitializeState",
    "parse_signal_list", "save_state_file", "load_state_file",
]
