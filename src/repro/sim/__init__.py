"""Simulation engines, state management, memories, and system tasks."""

from .activity import ToggleProfile
from .cycle_sim import (CompiledNetlist, CycleSim, ForcedRestoreWarning,
                        compile_netlist)
from .events import EventScheduler, HaltSimulation, Region
from .event_sim import (EventSim, LabeledSymbolDomain, PlainXDomain,
                        ValueDomain)
from .memory import XMemory
from .state import SimState
from .tasks import (InitializeState, MonitorX, load_state_file,
                    parse_signal_list, save_state_file)

__all__ = [
    "ToggleProfile",
    "CompiledNetlist", "CycleSim", "ForcedRestoreWarning",
    "compile_netlist",
    "EventScheduler", "HaltSimulation", "Region",
    "EventSim", "PlainXDomain", "LabeledSymbolDomain", "ValueDomain",
    "XMemory", "SimState",
    "MonitorX", "InitializeState",
    "parse_signal_list", "save_state_file", "load_state_file",
]
