"""VCD (Value Change Dump) waveform emission.

Standard debugging companion for any gate-level simulator: dump selected
nets (or everything) cycle by cycle into the IEEE 1364 VCD format that
GTKWave and friends read.  Four-valued values map directly (``0 1 x``;
``z`` never leaves the non-tristate cell library).

Usage::

    with VcdWriter(path, netlist, nets=netlist.bus("pc", 10)) as vcd:
        for _ in range(100):
            sim.step()
            sim.settle()
            vcd.sample(sim)
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import IO, Dict, List, Optional, Sequence, Union

from ..logic.value import Logic
from ..netlist.netlist import Netlist

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier for the index-th variable."""
    out = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        out.append(_ID_CHARS[rem])
    return "".join(out)


class VcdWriter:
    """Streams net values of a simulation into a VCD file."""

    def __init__(self, path: Union[str, Path], netlist: Netlist,
                 nets: Optional[Sequence[int]] = None,
                 timescale: str = "1ns",
                 module: Optional[str] = None):
        self.netlist = netlist
        self.nets: List[int] = list(nets) if nets is not None else \
            [n.index for n in netlist.nets]
        if not self.nets:
            raise ValueError("no nets selected for dumping")
        self._path = Path(path)
        self._fh: Optional[IO[str]] = None
        self._tmp: Optional[Path] = None
        self._ids: Dict[int, str] = {
            net: _identifier(i) for i, net in enumerate(self.nets)}
        self._last: Dict[int, str] = {}
        self._time = 0
        self._header_done = False
        self.timescale = timescale
        self.module = module or netlist.name

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "VcdWriter":
        self.open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def open(self) -> None:
        # stream into a same-directory temp file and publish with an
        # atomic rename on close: a run killed mid-dump leaves either
        # the previous complete waveform or none, never a torn one
        self._path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(self._path.parent),
                                        prefix=self._path.name + ".",
                                        suffix=".tmp")
        self._tmp = Path(tmp_name)
        self._fh = os.fdopen(fd, "w")
        self._write_header()

    def close(self) -> None:
        if self._fh is not None:
            from ..resilience.artifacts import fsync_dir
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
            os.replace(self._tmp, self._path)
            fsync_dir(self._path.parent)

    # -- emission ------------------------------------------------------------
    def _write_header(self) -> None:
        fh = self._fh
        assert fh is not None
        fh.write("$date repro symbolic simulator $end\n")
        fh.write(f"$timescale {self.timescale} $end\n")
        fh.write(f"$scope module {_sanitize(self.module)} $end\n")
        for net in self.nets:
            name = _sanitize(self.netlist.net_name(net))
            fh.write(f"$var wire 1 {self._ids[net]} {name} $end\n")
        fh.write("$upscope $end\n")
        fh.write("$enddefinitions $end\n")
        self._header_done = True

    def sample(self, sim, time: Optional[int] = None) -> None:
        """Record the current values (only changes are written)."""
        if self._fh is None:
            raise RuntimeError("writer is not open")
        stamp = time if time is not None else self._time
        wrote_time = False
        for net in self.nets:
            value = _vcd_char(sim.get_net(net))
            if self._last.get(net) == value:
                continue
            if not wrote_time:
                self._fh.write(f"#{stamp}\n")
                wrote_time = True
            self._fh.write(f"{value}{self._ids[net]}\n")
            self._last[net] = value
        self._time = stamp + 1


def _vcd_char(value: Logic) -> str:
    if value is Logic.L0:
        return "0"
    if value is Logic.L1:
        return "1"
    if value is Logic.Z:
        return "z"
    return "x"


def _sanitize(name: str) -> str:
    return name.replace("[", "_").replace("]", "").replace(" ", "_")


def parse_vcd_changes(text: str) -> Dict[str, List[tuple]]:
    """Minimal VCD reader (for tests): returns per-signal change lists
    ``[(time, value_char), ...]`` keyed by signal name."""
    ids_to_name: Dict[str, str] = {}
    changes: Dict[str, List[tuple]] = {}
    time = 0
    in_defs = True
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if in_defs:
            if line.startswith("$var"):
                parts = line.split()
                ids_to_name[parts[3]] = parts[4]
                changes[parts[4]] = []
            elif line.startswith("$enddefinitions"):
                in_defs = False
            continue
        if line.startswith("#"):
            time = int(line[1:])
        elif line[0] in "01xz":
            name = ids_to_name[line[1:]]
            changes[name].append((time, line[0]))
    return changes
