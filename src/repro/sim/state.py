"""Simulation state snapshots (paper section 3, items 2-3).

A :class:`SimState` captures everything needed to halt a simulation at a
PC-changing instruction and later *continue from the halted state* in a
fresh simulator instance -- the reproduction of the paper's
``$initialize_state()`` flow.  For the cycle engine this is the values of
all state nets (flop outputs and primary inputs) plus every attached
memory; comb nets are re-derived on restore.

States also implement the two CSM primitives (strict-subset test and
merge) over their full contents, vectorized with numpy.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

#: bump when the on-the-wire layout of :meth:`SimState.to_bytes` changes
STATE_FORMAT_VERSION = 1

_STATE_MAGIC = b"RSS\x01"
_STATE_HEADER = struct.Struct("<BI")     # version, crc32(payload)


class StateDecodeError(TypeError):
    """A serialized state blob is corrupt, truncated, or from an
    incompatible format version.  Subclasses :class:`TypeError` because
    the pre-versioned decoder raised that for non-state blobs."""


@dataclass
class SimState:
    """A resumable, mergeable snapshot of architectural state.

    Attributes:
        net_val / net_known: bitplanes over the *state nets* of the design
            (indexed positionally; the owning engine knows the mapping).
        memories: per-memory ``(val, known)`` word-bitplanes.
        cycle: simulation time at capture, in cycles.
        pc: program counter at capture (``None`` if it contained Xs).
        meta: free-form annotations (forced branch decision, path id, ...).
    """

    net_val: np.ndarray
    net_known: np.ndarray
    memories: Dict[str, Tuple[np.ndarray, np.ndarray]]
    cycle: int = 0
    pc: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def copy(self) -> "SimState":
        return SimState(
            self.net_val.copy(), self.net_known.copy(),
            {k: (v.copy(), m.copy()) for k, (v, m) in self.memories.items()},
            self.cycle, self.pc, dict(self.meta))

    # -- CSM primitives -------------------------------------------------------
    def _pairs(self, other: "SimState"):
        yield (self.net_val, self.net_known,
               other.net_val, other.net_known)
        for name, (val, known) in self.memories.items():
            oval, oknown = other.memories[name]
            yield val, known, oval, oknown

    def compatible(self, other: "SimState") -> bool:
        if self.net_val.shape != other.net_val.shape:
            return False
        if set(self.memories) != set(other.memories):
            return False
        return all(self.memories[k][0].shape == other.memories[k][0].shape
                   for k in self.memories)

    def covers(self, other: "SimState") -> bool:
        """Strict-subset test: is ``other`` contained in this state?

        Per bit: an unknown here covers anything; a known bit covers only
        an identical known bit.
        """
        for val, known, oval, oknown in self._pairs(other):
            ok = ~known | (oknown & (val == oval))
            if not ok.all():
                return False
        return True

    def merge(self, other: "SimState") -> "SimState":
        """Least conservative state covering both (differing bits -> X)."""
        out = self.copy()
        for (val, known, oval, oknown) in out._pairs(other):
            both = known & oknown & (val == oval)
            val &= both
            known &= both
        out.pc = self.pc if self.pc == other.pc else None
        out.cycle = min(self.cycle, other.cycle)
        return out

    def count_x(self) -> int:
        total = int((~self.net_known).sum())
        for val, known in self.memories.values():
            total += int((~known).sum())
        return total

    def state_bits(self) -> int:
        total = self.net_known.size
        for _, known in self.memories.values():
            total += known.size
        return total

    # -- serialization ---------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize for hand-off to another process or to a checkpoint.

        The blob is framed as ``magic | version | crc32 | pickle`` so a
        receiver can reject corrupted or incompatible state bytes
        deterministically instead of resuming from garbage.
        """
        payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        return (_STATE_MAGIC
                + _STATE_HEADER.pack(STATE_FORMAT_VERSION,
                                     zlib.crc32(payload))
                + payload)

    @staticmethod
    def from_bytes(blob: bytes) -> "SimState":
        if blob[:len(_STATE_MAGIC)] == _STATE_MAGIC:
            header_end = len(_STATE_MAGIC) + _STATE_HEADER.size
            try:
                version, crc = _STATE_HEADER.unpack(
                    blob[len(_STATE_MAGIC):header_end])
            except struct.error as exc:
                raise StateDecodeError(f"truncated state header: {exc}")
            if version != STATE_FORMAT_VERSION:
                raise StateDecodeError(
                    f"state format v{version} is not supported "
                    f"(this build reads v{STATE_FORMAT_VERSION})")
            payload = blob[header_end:]
            if zlib.crc32(payload) != crc:
                raise StateDecodeError(
                    "state checksum mismatch (corrupted bytes)")
            state = pickle.loads(payload)
        else:
            # pre-versioned blobs were a bare pickle of the dataclass,
            # which always starts with the PROTO opcode (0x80); anything
            # else is a framed blob whose magic was corrupted -- the
            # pickle VM could otherwise skip the flipped header bytes as
            # a data opcode and return the payload *without* its CRC
            # ever being checked
            if blob[:1] != b"\x80":
                raise StateDecodeError(
                    "state magic mismatch (corrupted bytes)")
            try:
                state = pickle.loads(blob)
            except Exception as exc:
                raise StateDecodeError(
                    f"undecodable state blob: {exc}") from exc
        if not isinstance(state, SimState):
            raise StateDecodeError("blob does not contain a SimState")
        return state

    def fingerprint(self) -> bytes:
        """Cheap content key (used for memoization in tests)."""
        parts = [self.net_val.tobytes(), self.net_known.tobytes()]
        for name in sorted(self.memories):
            val, known = self.memories[name]
            parts.append(val.tobytes())
            parts.append(known.tobytes())
        return b"".join(parts)
