"""Shared state-plane storage for the serial and batched engines.

Both engines keep a simulation's per-net state in the same six planes:

* ``val`` / ``known`` -- the Kleene X encoding (a net is X when its
  ``known`` bit is clear; ``val`` is always masked by ``known``);
* ``toggled`` / ``ever_x`` -- the activity record Algorithm 1 merges
  into the toggle profile;
* ``prev_val`` / ``prev_known`` -- the armed-activity reference frame.

The *storage* differs only in width:

* :class:`BoolPlanes` -- one bool per net, one simulation state: the
  serial :class:`~repro.sim.cycle_sim.CycleSim` layout.
* :class:`LanePlanes` -- ``(n_nets, n_words)`` uint64, **one bit per
  lane**: bit ``b`` of word ``w`` is lane ``w * 64 + b``.  Bitwise
  ``& | ^ ~`` over the words advances every lane at once, and widening
  a plane from 64 to N x 64 lanes is just ``n_words = N`` -- the fused
  kernels (:mod:`repro.sim.batch_kernels`) index nets on axis 0 and
  broadcast over the word axis unchanged.

Lane *bookkeeping* masks (active lanes, armed lanes, per-lane force and
dirty masks) stay arbitrary-precision Python ints -- one bit per lane,
however many words the planes span -- and the helpers below convert
between those ints and per-word uint64 rows at the numpy boundary.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: all bits of one plane word
M64 = (1 << 64) - 1
#: lanes packed into one uint64 plane word
LANE_WORD = 64

#: the six plane names, in the order ``arrays()`` yields them
PLANE_NAMES = ("val", "known", "toggled", "ever_x",
               "prev_val", "prev_known")


def lane_word_bit(lane: int) -> Tuple[int, int]:
    """``lane`` -> ``(word, bit-within-word)``."""
    return divmod(lane, LANE_WORD)


def mask_to_words(mask: int, n_words: int) -> np.ndarray:
    """A Python-int lane mask as a ``(n_words,)`` uint64 row."""
    return np.fromiter(((mask >> (LANE_WORD * w)) & M64
                        for w in range(n_words)),
                       dtype=np.uint64, count=n_words)


def words_to_int(row: np.ndarray) -> int:
    """A ``(n_words,)`` uint64 row as one Python-int lane mask."""
    mask = 0
    for w, word in enumerate(row.tolist()):
        mask |= word << (LANE_WORD * w)
    return mask


def column_bits(arr: np.ndarray, lane: int) -> np.ndarray:
    """One lane's bit column of a ``(n_nets, n_words)`` plane as bools."""
    w, b = lane_word_bit(lane)
    return ((arr[:, w] >> np.uint64(b)) & np.uint64(1)).astype(bool)


class BoolPlanes:
    """One simulation state: ``(n_nets,)`` bool planes (serial engine)."""

    __slots__ = ("n_nets", "val", "known", "toggled", "ever_x",
                 "prev_val", "prev_known")

    def __init__(self, n_nets: int):
        self.n_nets = n_nets
        self.val = np.zeros(n_nets, dtype=bool)
        self.known = np.zeros(n_nets, dtype=bool)   # everything starts X
        self.toggled = np.zeros(n_nets, dtype=bool)
        self.ever_x = np.zeros(n_nets, dtype=bool)
        self.prev_val = np.zeros(n_nets, dtype=bool)
        self.prev_known = np.zeros(n_nets, dtype=bool)

    def arrays(self) -> Tuple[np.ndarray, ...]:
        return (self.val, self.known, self.toggled, self.ever_x,
                self.prev_val, self.prev_known)


class LanePlanes:
    """``lanes`` simulation states: ``(n_nets, n_words)`` uint64 planes."""

    __slots__ = ("n_nets", "lanes", "n_words", "full_mask",
                 "val", "known", "toggled", "ever_x",
                 "prev_val", "prev_known")

    def __init__(self, n_nets: int, lanes: int):
        if lanes <= 0 or lanes % LANE_WORD:
            raise ValueError(
                f"lane capacity must be a positive multiple of "
                f"{LANE_WORD}, got {lanes}")
        self.n_nets = n_nets
        self.lanes = lanes
        self.n_words = lanes // LANE_WORD
        #: every lane bit set (Python int; the mask-space complement base)
        self.full_mask = (1 << lanes) - 1
        shape = (n_nets, self.n_words)
        self.val = np.zeros(shape, dtype=np.uint64)
        self.known = np.zeros(shape, dtype=np.uint64)
        self.toggled = np.zeros(shape, dtype=np.uint64)
        self.ever_x = np.zeros(shape, dtype=np.uint64)
        self.prev_val = np.zeros(shape, dtype=np.uint64)
        self.prev_known = np.zeros(shape, dtype=np.uint64)

    def arrays(self) -> Tuple[np.ndarray, ...]:
        return (self.val, self.known, self.toggled, self.ever_x,
                self.prev_val, self.prev_known)

    def mask_words(self, mask: int) -> np.ndarray:
        """A lane-mask int as a ``(n_words,)`` row (broadcasts over nets)."""
        return mask_to_words(mask, self.n_words)

    def lane_mask_words(self, lane: int) -> np.ndarray:
        """A single lane's mask as a ``(n_words,)`` row."""
        return mask_to_words(1 << lane, self.n_words)

    def clear_lane(self, lane: int) -> None:
        """Zero one lane's bit column in every plane."""
        w, b = lane_word_bit(lane)
        inv = np.uint64(~(1 << b) & M64)
        for arr in self.arrays():
            arr[:, w] &= inv

    def copy_lane(self, src: int, dst: int) -> None:
        """Copy lane ``src``'s bit column into lane ``dst`` (every plane)."""
        ws, bs = lane_word_bit(src)
        wd, bd = lane_word_bit(dst)
        sh_src, sh_dst = np.uint64(bs), np.uint64(bd)
        inv = np.uint64(~(1 << bd) & M64)
        one = np.uint64(1)
        for arr in self.arrays():
            column = (arr[:, ws] >> sh_src) & one
            arr[:, wd] &= inv
            arr[:, wd] |= column << sh_dst
