"""Event scheduler with the paper's event regions (Figure 2).

iverilog executes each time step as a sequence of event regions.  The
paper's key simulator change is a **new region, "Symbolic events",
executed after all others**, so that monitoring control-flow signals,
halting, and state save/restore observe a fully-settled time step.  This
module reproduces that scheduler: four standard regions (Active,
Inactive, NBA, Postponed) plus the Symbolic region appended at the end.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple


class Region(enum.IntEnum):
    """Event regions, in intra-time-step execution order."""

    ACTIVE = 0
    INACTIVE = 1
    NBA = 2
    POSTPONED = 3
    SYMBOLIC = 4          # the paper's added region -- always last


Event = Callable[[], None]


class HaltSimulation(Exception):
    """Raised by a symbolic-region task to stop the simulation.

    Carries a ``reason`` (e.g. ``"monitor_x"``) so callers can distinguish
    control-flow halts from normal termination.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class EventScheduler:
    """Time-wheel scheduler over the five regions."""

    def __init__(self):
        self.time = 0
        self._current: List[Deque[Event]] = [deque() for _ in Region]
        self._future: Dict[int, List[Deque[Event]]] = {}
        self._future_heap: List[int] = []
        self.events_executed = 0
        #: trace of (time, region) for executed events; enabled by tests
        self.trace: Optional[List[Tuple[int, int]]] = None

    # -- scheduling -----------------------------------------------------------
    def schedule(self, region: Region, fn: Event, delay: int = 0) -> None:
        """Queue ``fn`` in ``region``, ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if delay == 0:
            self._current[region].append(fn)
            return
        when = self.time + delay
        slot = self._future.get(when)
        if slot is None:
            slot = [deque() for _ in Region]
            self._future[when] = slot
            heapq.heappush(self._future_heap, when)
        slot[region].append(fn)

    def pending_in_current(self) -> bool:
        return any(self._current[r] for r in Region)

    def next_time(self) -> Optional[int]:
        return self._future_heap[0] if self._future_heap else None

    # -- execution ---------------------------------------------------------
    def run_time_step(self) -> None:
        """Drain the current time step region by region.

        Events executed in an earlier region may schedule into later (or
        the same) regions of the same step; regions are revisited until
        the whole step is quiescent, with the Symbolic region always
        receiving a settled view (it only runs when ACTIVE..POSTPONED are
        empty).
        """
        while True:
            ran = False
            for region in (Region.ACTIVE, Region.INACTIVE, Region.NBA,
                           Region.POSTPONED):
                queue = self._current[region]
                while queue:
                    fn = queue.popleft()
                    self.events_executed += 1
                    if self.trace is not None:
                        self.trace.append((self.time, int(region)))
                    fn()
                    ran = True
                    if self._current[Region.ACTIVE] and \
                            region is not Region.ACTIVE:
                        break  # fall back to Active first
                if self._current[Region.ACTIVE] and \
                        region is not Region.ACTIVE:
                    break
            if ran:
                continue
            sym = self._current[Region.SYMBOLIC]
            if sym:
                fn = sym.popleft()
                self.events_executed += 1
                if self.trace is not None:
                    self.trace.append((self.time, int(Region.SYMBOLIC)))
                fn()  # may raise HaltSimulation
                continue
            break

    def advance(self) -> bool:
        """Move to the next scheduled time; False when nothing is left."""
        while self._future_heap:
            when = heapq.heappop(self._future_heap)
            slot = self._future.pop(when)
            if any(slot):
                self.time = when
                self._current = slot
                return True
        return False

    def run(self, until: Optional[int] = None) -> None:
        """Run until the event queue empties or ``until`` time is passed."""
        self.run_time_step()
        while self.advance():
            if until is not None and self.time > until:
                return
            self.run_time_step()

    # -- introspection / serialization --------------------------------------
    def future_times(self) -> List[int]:
        return sorted(t for t, slot in self._future.items() if any(slot))

    def clear(self) -> None:
        self._current = [deque() for _ in Region]
        self._future.clear()
        self._future_heap = []
