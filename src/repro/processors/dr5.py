"""The dr5 model: a RISC-V RV32E-subset core without a multiplier.

Architectural properties preserved from DarkRISCV as characterized by the
paper:

* **branches resolve from a full-width register comparison** -- the
  datapath latches both operands into pipeline registers and computes
  ``opA - opB``; those wide latched operands are the monitored
  control-flow state, so symbolic data pollutes many state bits per
  branch (section 5.0.3's "register fills with Xs" effect);
* **no hardware multiplier** -- multiplication is a software
  shift-and-add loop with input-dependent branches, which is why the
  ``mult`` benchmark needs more than one simulation path on dr5 alone;
* only the processor core and memory are modeled (paper section 4) --
  there is no peripheral logic, which is why dr5 shows the smallest
  bespoke gate reduction (Figure 5).

The pipeline is folded into a two-phase multicycle machine (FETCH latches
the instruction and both register operands; EXEC computes, accesses
memory, and retires) -- a documented simplification of DarkRISCV's
3-stage pipeline that keeps its operand-latch state structure.
"""

from __future__ import annotations

from typing import Tuple

from ..isa import rv32e as isa
from ..netlist.netlist import Netlist
from ..rtl.module import Design, mux
from .common import RegisterFile, alu_adder, is_const_eq
from .meta import CoreMeta

PC_WIDTH = 10
DMEM_ADDR_WIDTH = 8
WORD = 32


def build_dr5() -> Tuple[Netlist, CoreMeta]:
    """Elaborate the core; returns ``(netlist, metadata)``."""
    d = Design("dr5")
    d._reset_net()

    pmem_data = d.input("pmem_data", WORD)
    dmem_rdata = d.input("dmem_rdata", WORD)

    pc = d.reg(PC_WIDTH, "pc_r", reset=True)
    phase = d.reg(1, "phase_r", reset=True)      # 0 = FETCH, 1 = EXEC
    ir = d.reg(WORD, "ir_r", reset=True)
    op_a = d.reg(WORD, "op_a", reset=False)      # latched rs1 operand
    op_b = d.reg(WORD, "op_b", reset=False)      # latched rs2 operand
    rf = RegisterFile(d, 8, WORD, name="x", r0_is_zero=True)

    in_fetch = ~phase.q
    in_exec = phase.q
    phase.drive(~phase.q)

    # -- FETCH: latch instruction and read operands early -------------------
    fetch_rs1 = pmem_data[23:26]
    fetch_rs2 = pmem_data[20:23]
    ir.drive(pmem_data, enable=in_fetch)
    op_a.drive(rf.read(fetch_rs1), enable=in_fetch)
    op_b.drive(rf.read(fetch_rs2), enable=in_fetch)

    # -- EXEC: decode from the instruction register ---------------------------
    instr = ir.q
    op = instr[26:32]
    rd_idx = instr[17:20]
    shamt = instr[6:11]
    funct = instr[0:6]
    imm16 = instr[0:16]

    is_rtype = is_const_eq(d, op, isa.OP_RTYPE)
    is_f = {f: is_rtype & is_const_eq(d, funct, f) for f in (
        isa.F_ADD, isa.F_SUB, isa.F_AND, isa.F_OR, isa.F_XOR,
        isa.F_SLL, isa.F_SRL, isa.F_SLT, isa.F_SLTU)}
    is_o = {o: is_const_eq(d, op, o) for o in (
        isa.OP_ADDI, isa.OP_ANDI, isa.OP_ORI, isa.OP_XORI, isa.OP_SLLI,
        isa.OP_SRLI, isa.OP_LUI, isa.OP_LW, isa.OP_SW, isa.OP_BEQ,
        isa.OP_BNE, isa.OP_BLT, isa.OP_BGE, isa.OP_BLTU, isa.OP_BGEU,
        isa.OP_JAL)}

    imm_sext = imm16.sext(WORD)
    imm_zext = imm16.zext(WORD)
    use_imm = (is_o[isa.OP_ADDI] | is_o[isa.OP_ANDI] | is_o[isa.OP_ORI]
               | is_o[isa.OP_XORI] | is_o[isa.OP_LW] | is_o[isa.OP_SW])
    imm_is_zext = (is_o[isa.OP_ANDI] | is_o[isa.OP_ORI]
                   | is_o[isa.OP_XORI])
    use_shamt_imm = is_o[isa.OP_SLLI] | is_o[isa.OP_SRLI]

    a_val = op_a.q
    b_val = mux(use_imm, op_b.q, mux(imm_is_zext, imm_sext, imm_zext))

    # -- ALU ---------------------------------------------------------------------
    do_sub = is_f[isa.F_SUB] | is_f[isa.F_SLT] | is_f[isa.F_SLTU]
    alu_sum, alu_carry, _ = alu_adder(d, a_val, b_val, do_sub)
    and_r = a_val & b_val
    or_r = a_val | b_val
    xor_r = a_val ^ b_val
    sh_amt = mux(use_shamt_imm, op_b.q[0:5], shamt)
    sll_r = a_val.shl(sh_amt)
    srl_r = a_val.shr(sh_amt)
    slt_r = a_val.slt(b_val).zext(WORD)
    sltu_r = (~alu_carry).zext(WORD)
    lui_r = d.const(0, 16).cat(imm16)
    pc_plus1, _ = pc.q.add(d.const(1, PC_WIDTH))
    link_r = pc_plus1.zext(WORD)

    dmem_addr = alu_sum[0:DMEM_ADDR_WIDTH]

    result = (
        (alu_sum & (is_f[isa.F_ADD] | is_f[isa.F_SUB]
                    | is_o[isa.OP_ADDI]).repl(WORD))
        | (and_r & (is_f[isa.F_AND] | is_o[isa.OP_ANDI]).repl(WORD))
        | (or_r & (is_f[isa.F_OR] | is_o[isa.OP_ORI]).repl(WORD))
        | (xor_r & (is_f[isa.F_XOR] | is_o[isa.OP_XORI]).repl(WORD))
        | (sll_r & (is_f[isa.F_SLL] | is_o[isa.OP_SLLI]).repl(WORD))
        | (srl_r & (is_f[isa.F_SRL] | is_o[isa.OP_SRLI]).repl(WORD))
        | (slt_r & is_f[isa.F_SLT].repl(WORD))
        | (sltu_r & is_f[isa.F_SLTU].repl(WORD))
        | (lui_r & is_o[isa.OP_LUI].repl(WORD))
        | (dmem_rdata & is_o[isa.OP_LW].repl(WORD))
        | (link_r & is_o[isa.OP_JAL].repl(WORD)))

    writes_rd = (is_rtype | is_o[isa.OP_ADDI] | is_o[isa.OP_ANDI]
                 | is_o[isa.OP_ORI] | is_o[isa.OP_XORI]
                 | is_o[isa.OP_SLLI] | is_o[isa.OP_SRLI]
                 | is_o[isa.OP_LUI] | is_o[isa.OP_LW]
                 | is_o[isa.OP_JAL])
    rf.connect_write(rd_idx, result, writes_rd & in_exec)

    # -- control flow ----------------------------------------------------------
    # Wide branch comparator over the *latched* operand registers: the
    # monitored signals are op_a / op_b themselves.
    br_diff, br_carry, _ = alu_adder(d, op_a.q, op_b.q, d.const(1, 1))
    br_eq = br_diff.none()
    br_ltu = ~br_carry
    br_lt = op_a.q.slt(op_b.q)
    is_branch = (is_o[isa.OP_BEQ] | is_o[isa.OP_BNE] | is_o[isa.OP_BLT]
                 | is_o[isa.OP_BGE] | is_o[isa.OP_BLTU]
                 | is_o[isa.OP_BGEU])
    cond = ((is_o[isa.OP_BEQ] & br_eq)
            | (is_o[isa.OP_BNE] & ~br_eq)
            | (is_o[isa.OP_BLT] & br_lt)
            | (is_o[isa.OP_BGE] & ~br_lt)
            | (is_o[isa.OP_BLTU] & br_ltu)
            | (is_o[isa.OP_BGEU] & ~br_ltu))
    branch_point = d.name_sig("branch_point", is_branch & in_exec)
    branch_taken = d.name_sig("branch_taken", is_branch & cond)

    pc_target = imm16[0:PC_WIDTH]
    pc_next = mux(branch_taken, pc_plus1, pc_target)
    pc_next = mux(is_o[isa.OP_JAL], pc_next, pc_target)
    pc.drive(pc_next, enable=in_exec)

    # -- ports ------------------------------------------------------------------
    d.output("pmem_addr", pc.q)
    d.output("pc", pc.q)
    d.output("phase", phase.q)
    d.output("dmem_addr", dmem_addr)
    d.output("dmem_wdata", op_b.q)
    d.output("dmem_we", is_o[isa.OP_SW] & in_exec)
    d.output("branch_point_o", branch_point)
    d.output("branch_taken_o", branch_taken)

    netlist = d.finalize()
    meta = CoreMeta(
        name="dr5",
        isa="RV32e",
        word_width=WORD,
        pc_width=PC_WIDTH,
        dmem_addr_width=DMEM_ADDR_WIDTH,
        monitored=[("op_a", WORD), ("op_b", WORD)],
        branch_point="branch_point",
        branch_force="branch_taken",
        extras={"phase": "phase"},
        features=("32-bit RISCV embedded ISA, operand-latched two-phase "
                  "datapath, no hardware multiplier"),
    )
    return netlist, meta
