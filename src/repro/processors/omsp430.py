"""The omsp430 model: a 16-bit MSP430-class microcontroller with
peripherals.

Architectural properties preserved from openMSP430 (the paper's silicon
target):

* compare instructions write only the four 1-bit **N/Z/C/V status flags**;
  conditional jumps resolve from them, so a data-dependent branch exposes
  at most four symbolic bits to the state repository (section 5.0.3);
* a block of **memory-mapped peripherals** -- 16x16 hardware multiplier,
  watchdog, GPIO, TimerA -- sits in the data address space.  Applications
  that never touch a peripheral leave its logic untoggled, which is why
  the paper reports the largest bespoke reductions on this core
  (Figure 5).

The core is single-cycle (fetch and execute in one clock): a
simplification of openMSP430's multi-cycle datapath that preserves the
flag architecture and the peripheral map, which are what the analysis
results depend on.
"""

from __future__ import annotations

from typing import Tuple

from ..isa import msp430 as isa
from ..netlist.netlist import Netlist
from ..rtl.module import Design, Sig, mux, mux_tree
from .common import RegisterFile, alu_adder, array_multiplier, is_const_eq
from .meta import CoreMeta

PC_WIDTH = 10
DMEM_ADDR_WIDTH = 8
WORD = 16


def build_omsp430() -> Tuple[Netlist, CoreMeta]:
    """Elaborate the core; returns ``(netlist, metadata)``."""
    d = Design("omsp430")
    d._reset_net()   # materialize rst early so it is always present

    # -- primary inputs -------------------------------------------------------
    pmem_data = d.input("pmem_data", WORD)
    dmem_rdata = d.input("dmem_rdata", WORD)
    gpio_in = d.input("gpio_in", WORD)
    irq = d.input("irq")

    # -- architectural state -----------------------------------------------
    pc = d.reg(PC_WIDTH, "pc_r", reset=True)
    rf = RegisterFile(d, 8, WORD, name="r")
    flag_n = d.reg(1, "sr_n", reset=True)
    flag_z = d.reg(1, "sr_z", reset=True)
    flag_c = d.reg(1, "sr_c", reset=True)
    flag_v = d.reg(1, "sr_v", reset=True)

    # -- fetch ----------------------------------------------------------------
    instr = pmem_data
    op = instr[12:16]
    rd_idx = instr[9:12]
    rs_idx = instr[6:9]
    imm8 = instr[0:8]
    imm6 = instr[0:6]
    addr10 = instr[0:10]
    addr9 = instr[0:9]
    cond = instr[9:12]
    subop = instr[6:9]

    is_op = {code: is_const_eq(d, op, code) for code in range(15)}

    rd_val = rf.read(rd_idx)
    rs_val = rf.read(rs_idx)

    # -- interrupt take decision --------------------------------------------
    # GIE and the vector register live with the peripherals below; the
    # flops are declared here so the take decision can gate every commit.
    gie = d.reg(1, "gie", reset=True)
    ivec = d.reg(PC_WIDTH, "ivec_r", reset=True)
    irq_take = d.name_sig("irq_take", irq & gie.q)

    # -- ALU --------------------------------------------------------------------
    do_sub = is_op[isa.OP_SUB] | is_op[isa.OP_CMP]
    alu_sum, alu_carry, alu_ovf = alu_adder(d, rd_val, rs_val, do_sub)
    and_r = rd_val & rs_val
    or_r = rd_val | rs_val
    xor_r = rd_val ^ rs_val
    rra_r = rd_val.sar_const(1)
    srl_r = rd_val.shr_const(1)
    shift_is_srl = is_const_eq(d, subop, isa.SH_SRL)
    shift_r = mux(shift_is_srl, rra_r, srl_r)

    movi_r = imm8.sext(WORD)
    movhi_r = rd_val[0:8].cat(imm8)

    # -- data memory address ---------------------------------------------------
    ea_full, _, _ = alu_adder(d, rs_val, imm6.sext(WORD), d.const(0, 1))
    dmem_addr = ea_full[0:DMEM_ADDR_WIDTH]
    is_ld = is_op[isa.OP_LD]
    is_st = is_op[isa.OP_ST]

    # peripheral page: 0x0100 - 0x010F (disjoint from the data RAM page)
    ea_page = ea_full[4:16]
    is_periph = is_const_eq(d, ea_page, isa.PERIPH_BASE >> 4)
    psel = ea_full[0:4]

    # -- peripherals -----------------------------------------------------------
    wdata = rd_val

    st_ok = is_st & ~irq_take          # a taken interrupt preempts the
                                       # instruction at PC: no commits

    def periph_we(offset: int) -> Sig:
        return st_ok & is_periph & is_const_eq(d, psel,
                                               offset - isa.PERIPH_BASE)

    # hardware multiplier (memory-mapped, like openMSP430's MPY)
    mpy_op1 = d.reg(WORD, "mpy_op1", reset=True)
    mpy_op1.drive(wdata, enable=periph_we(isa.MPY_OP1))
    mpy_op2 = d.reg(WORD, "mpy_op2", reset=True)
    mpy_op2.drive(wdata, enable=periph_we(isa.MPY_OP2))
    product = array_multiplier(d, mpy_op1.q, mpy_op2.q)
    res_lo = product[0:WORD]
    res_hi = product[WORD:2 * WORD]

    # GPIO
    gpio_out = d.reg(WORD, "gpio_out_r", reset=True)
    gpio_out.drive(wdata, enable=periph_we(isa.GPIO_OUT))

    # watchdog: counts while enabled; reset-disabled (programs opt in)
    wdt_en = d.reg(1, "wdt_en", reset=True)
    wdt_en.drive(wdata[0:1], enable=periph_we(isa.WDT_CTL))
    wdt_cnt = d.reg(WORD, "wdt_cnt", reset=True)
    wdt_inc, _ = wdt_cnt.q.add(d.const(1, WORD))
    wdt_cnt.drive(wdt_inc, enable=wdt_en.q)

    # TimerA: free-running counter + compare register + compare flag
    ta_en = d.reg(1, "ta_en", reset=True)
    ta_en.drive(wdata[0:1], enable=periph_we(isa.TA_CTL))
    ta_cnt = d.reg(WORD, "ta_cnt", reset=True)
    ta_inc, _ = ta_cnt.q.add(d.const(1, WORD))
    ta_cnt.drive(ta_inc, enable=ta_en.q)
    ta_ccr = d.reg(WORD, "ta_ccr", reset=True)
    ta_ccr.drive(wdata, enable=periph_we(isa.TA_CCR))
    ta_hit = ta_cnt.q.eq(ta_ccr.q)

    # interrupt controller: GIE cleared on take, vector programmable
    gie_next = mux(irq_take, wdata[0:1], d.const(0, 1))
    gie.drive(gie_next, enable=periph_we(isa.IE_CTL) | irq_take)
    ivec.drive(wdata[0:PC_WIDTH], enable=periph_we(isa.IVEC))

    periph_read = mux_tree(psel, [
        mpy_op1.q,                         # 0x100
        mpy_op2.q,                         # 0x101
        res_lo,                            # 0x102
        res_hi,                            # 0x103
        gpio_out.q,                        # 0x104
        gpio_in,                           # 0x105
        wdt_en.q.zext(WORD),               # 0x106
        wdt_cnt.q,                         # 0x107
        ta_en.q.zext(WORD - 1).cat(ta_hit),  # 0x108 (bit15 = compare hit)
        ta_cnt.q,                          # 0x109
        ta_ccr.q,                          # 0x10A
        gie.q.zext(WORD),                  # 0x10B
        ivec.q.zext(WORD),                 # 0x10C
        d.const(0, WORD),
        d.const(0, WORD),
        d.const(0, WORD),
    ])
    load_data = mux(is_periph, dmem_rdata, periph_read)

    # -- result / write-back -----------------------------------------------------
    result = mux_tree(op, [
        rs_val,        # MOV
        alu_sum,       # ADD
        alu_sum,       # SUB
        alu_sum,       # CMP (not written back)
        and_r,         # AND
        or_r,          # BIS
        xor_r,         # XOR
        movi_r,        # MOVI
        movhi_r,       # MOVHI
        load_data,     # LD
        rd_val,        # ST (not written back)
        rd_val,        # JMP
        rd_val,        # JCC
        shift_r,       # SHIFT
        rd_val,
        rd_val,
    ])
    writes_rd = (is_op[isa.OP_MOV] | is_op[isa.OP_ADD] | is_op[isa.OP_SUB]
                 | is_op[isa.OP_AND] | is_op[isa.OP_BIS]
                 | is_op[isa.OP_XOR] | is_op[isa.OP_MOVI]
                 | is_op[isa.OP_MOVHI] | is_op[isa.OP_LD]
                 | is_op[isa.OP_SHIFT])
    # a taken interrupt writes the return address into r7 instead
    wb_addr = mux(irq_take, rd_idx, d.const(7, 3))
    wb_data = mux(irq_take, result, pc.q.zext(WORD))
    rf.connect_write(wb_addr, wb_data, irq_take | (writes_rd & ~irq_take))

    # -- flags --------------------------------------------------------------------
    arith = is_op[isa.OP_ADD] | is_op[isa.OP_SUB] | is_op[isa.OP_CMP]
    logic_f = (is_op[isa.OP_AND] | is_op[isa.OP_BIS] | is_op[isa.OP_XOR]
               | is_op[isa.OP_SHIFT])
    flag_en = (arith | logic_f) & ~irq_take
    flag_src = mux(arith, result, alu_sum)
    n_next = flag_src[WORD - 1]
    z_next = flag_src.none()
    shift_cout = rd_val[0]
    c_next = mux(arith, shift_cout & is_op[isa.OP_SHIFT], alu_carry)
    v_next = mux(arith, d.const(0, 1), alu_ovf)
    flag_n.drive(n_next, enable=flag_en)
    flag_z.drive(z_next, enable=flag_en)
    flag_c.drive(c_next, enable=flag_en)
    flag_v.drive(v_next, enable=flag_en)

    # -- control flow ------------------------------------------------------------
    n, z, c, v = flag_n.q, flag_z.q, flag_c.q, flag_v.q
    cond_true = mux_tree(cond, [
        z,                  # JEQ
        ~z,                 # JNE
        c,                  # JC
        ~c,                 # JNC
        n,                  # JN
        ~(n ^ v),           # JGE
        n ^ v,              # JL
        d.const(1, 1),
    ])
    is_jcc = is_op[isa.OP_JCC] & ~irq_take
    is_jmp = is_op[isa.OP_JMP]
    is_jrr = is_op[isa.OP_JRR]
    branch_point = d.name_sig("branch_point", is_jcc)
    branch_taken = d.name_sig("branch_taken", is_jcc & cond_true)
    pc_plus1, _ = pc.q.add(d.const(1, PC_WIDTH))
    pc_next = mux(branch_taken, pc_plus1, addr9.zext(PC_WIDTH))
    pc_next = mux(is_jmp, pc_next, addr10)
    pc_next = mux(is_jrr, pc_next, rd_val[0:PC_WIDTH])
    pc_next = mux(irq_take, pc_next, ivec.q)
    pc.drive(pc_next)

    # -- ports ----------------------------------------------------------------------
    d.output("pmem_addr", pc.q)
    d.output("pc", pc.q)
    d.output("dmem_addr", dmem_addr)
    d.output("dmem_wdata", wdata)
    d.output("dmem_we", st_ok & ~is_periph)
    d.output("gpio_out", gpio_out.q)
    d.output("branch_point_o", branch_point)
    d.output("branch_taken_o", branch_taken)
    d.output("flags", flag_n.q.cat(flag_z.q, flag_c.q, flag_v.q))

    netlist = d.finalize()
    meta = CoreMeta(
        name="omsp430",
        isa="MSP430",
        word_width=WORD,
        pc_width=PC_WIDTH,
        dmem_addr_width=DMEM_ADDR_WIDTH,
        monitored=[("sr_n", 1), ("sr_z", 1), ("sr_c", 1), ("sr_v", 1)],
        branch_point="branch_point",
        branch_force="branch_taken",
        features=("16-bit microcontroller with 16x16 hardware multiplier, "
                  "watchdog, GPIO, TimerA, interrupt controller"),
    )
    return netlist, meta
