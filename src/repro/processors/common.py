"""Shared datapath building blocks for the three processor models.

Everything here elaborates to primitive gates through the RTL kit, so the
resulting cores are genuine gate-level netlists -- the object the paper's
tool analyzes -- not behavioural models.
"""

from __future__ import annotations

from typing import List, Tuple

from ..rtl.module import Design, Reg, Sig, mux, mux_tree


class RegisterFile:
    """A flop-based register file with decoded write enables.

    Registers are *not* reset: they power up as ``X``, exactly matching
    the paper's testbench requirement that processor registers start
    symbolic (Listing 1, step 3).  ``r0_is_zero`` hard-wires register 0
    to constant zero (MIPS/RISC-V convention).
    """

    def __init__(self, d: Design, nregs: int, width: int,
                 name: str = "rf", r0_is_zero: bool = False):
        if nregs & (nregs - 1):
            raise ValueError("nregs must be a power of two")
        self.d = d
        self.nregs = nregs
        self.width = width
        self.r0_is_zero = r0_is_zero
        self.regs: List[Reg] = [
            d.reg(width, f"{name}{i}", reset=False)
            for i in range(nregs)]

    def connect_write(self, waddr: Sig, wdata: Sig, wen: Sig) -> None:
        """Wire the single write port (call exactly once).

        Reads may happen before or after this call -- registers are
        declared up-front, so read muxes see the flop outputs either way.
        """
        start = 1 if self.r0_is_zero else 0
        for i in range(start, self.nregs):
            sel = _addr_match(self.d, waddr, i)
            self.regs[i].drive(wdata, enable=sel & wen)
        if self.r0_is_zero:
            self.regs[0].drive(self.d.const(0, self.width))

    def read(self, raddr: Sig) -> Sig:
        """Combinational read port (any number of calls)."""
        vals = [reg.q for reg in self.regs]
        if self.r0_is_zero:
            vals[0] = self.d.const(0, self.width)
        return mux_tree(raddr, vals)


def _addr_match(d: Design, addr: Sig, index: int) -> Sig:
    """1 when ``addr`` equals the constant ``index``."""
    bits = []
    for b in range(addr.width):
        bit = addr[b]
        bits.append(bit if (index >> b) & 1 else ~bit)
    acc = bits[0]
    for bit in bits[1:]:
        acc = acc & bit
    return acc


def alu_adder(d: Design, a: Sig, b: Sig, sub: Sig) -> Tuple[Sig, Sig, Sig]:
    """Shared add/sub unit: returns ``(result, carry_out, overflow)``.

    ``sub`` selects subtraction (b inverted, carry-in 1).
    """
    b_eff = mux(sub, b, ~b)
    result, carry = a.add(b_eff, carry_in=sub)
    a_msb = a[a.width - 1]
    b_msb = b_eff[b_eff.width - 1]
    r_msb = result[result.width - 1]
    overflow = (a_msb & b_msb & ~r_msb) | (~a_msb & ~b_msb & r_msb)
    return result, carry, overflow


def array_multiplier(d: Design, a: Sig, b: Sig) -> Sig:
    """Unsigned array multiplier: returns the ``a.width + b.width``-bit
    product (partial products + ripple accumulation, as synthesized)."""
    total = a.width + b.width
    acc = d.const(0, total)
    for i in range(b.width):
        pp = a & b[i].repl(a.width)
        shifted = d.const(0, i).cat(pp, d.const(0, total - i - a.width)) \
            if i > 0 else pp.cat(d.const(0, total - a.width))
        acc, _ = acc.add(shifted)
    return acc


def sign_extend_imm(d: Design, imm_bits: Sig, width: int) -> Sig:
    return imm_bits.sext(width)


def is_const_eq(d: Design, sig: Sig, value: int) -> Sig:
    """1 when ``sig`` equals constant ``value``."""
    return _addr_match(d, sig, value)
