"""The bm32 model: a 32-bit MIPS teaching processor with a hardware
multiplier.

Architectural properties preserved from the paper's bm32:

* **compares are subtractions into a general register**: benchmark code
  uses the ``subu t, a, b`` + ``beq/bne t, r0`` idiom, so each
  data-dependent compare deposits a full-width symbolic result in the
  register file, and the state repository converges only as those wide
  registers saturate with Xs (section 5.0.3's explanation for bm32's
  high path counts);
* a **hardware multiplier** (``mult`` + ``mflo/mfhi``), so the ``mult``
  benchmark runs without data-dependent control flow (1 path).

Simplifications (documented substitutions): single-cycle datapath,
8 registers with ``r0 = 0``, word-addressed PC, absolute branch targets,
no delay slots, 16x16 -> 32 multiplier array.
"""

from __future__ import annotations

from typing import Tuple

from ..isa import mips32 as isa
from ..netlist.netlist import Netlist
from ..rtl.module import Design, mux
from .common import RegisterFile, alu_adder, array_multiplier, is_const_eq
from .meta import CoreMeta

PC_WIDTH = 10
DMEM_ADDR_WIDTH = 8
WORD = 32


def build_bm32() -> Tuple[Netlist, CoreMeta]:
    """Elaborate the core; returns ``(netlist, metadata)``."""
    d = Design("bm32")
    d._reset_net()

    pmem_data = d.input("pmem_data", WORD)
    dmem_rdata = d.input("dmem_rdata", WORD)

    pc = d.reg(PC_WIDTH, "pc_r", reset=True)
    rf = RegisterFile(d, 8, WORD, name="r", r0_is_zero=True)
    hi = d.reg(WORD, "hi_r", reset=True)
    lo = d.reg(WORD, "lo_r", reset=True)

    instr = pmem_data
    op = instr[26:32]
    rs_idx = instr[23:26]
    rt_idx = instr[20:23]
    rd_idx = instr[17:20]
    shamt = instr[6:11]
    funct = instr[0:6]
    imm16 = instr[0:16]
    addr26 = instr[0:26]

    rs_val = rf.read(rs_idx)
    rt_val = rf.read(rt_idx)

    is_rtype = is_const_eq(d, op, isa.OP_RTYPE)
    is_f = {f: is_rtype & is_const_eq(d, funct, f) for f in (
        isa.F_SLL, isa.F_SRL, isa.F_MFHI, isa.F_MFLO, isa.F_MULT,
        isa.F_ADDU, isa.F_SUBU, isa.F_AND, isa.F_OR, isa.F_XOR,
        isa.F_SLT, isa.F_SLTU)}
    is_o = {o: is_const_eq(d, op, o) for o in (
        isa.OP_J, isa.OP_BEQ, isa.OP_BNE, isa.OP_ADDIU, isa.OP_ANDI,
        isa.OP_ORI, isa.OP_XORI, isa.OP_LUI, isa.OP_LW, isa.OP_SW)}

    # -- operand selection --------------------------------------------------
    imm_sext = imm16.sext(WORD)
    imm_zext = imm16.zext(WORD)
    use_imm = (is_o[isa.OP_ADDIU] | is_o[isa.OP_ANDI] | is_o[isa.OP_ORI]
               | is_o[isa.OP_XORI] | is_o[isa.OP_LW] | is_o[isa.OP_SW])
    imm_is_zext = (is_o[isa.OP_ANDI] | is_o[isa.OP_ORI]
                   | is_o[isa.OP_XORI])
    opnd_b = mux(use_imm, rt_val, mux(imm_is_zext, imm_sext, imm_zext))

    # -- ALU --------------------------------------------------------------------
    do_sub = is_f[isa.F_SUBU] | is_f[isa.F_SLT] | is_f[isa.F_SLTU]
    alu_sum, alu_carry, alu_ovf = alu_adder(d, rs_val, opnd_b, do_sub)
    and_r = rs_val & opnd_b
    or_r = rs_val | opnd_b
    xor_r = rs_val ^ opnd_b
    sll_r = rt_val.shl(shamt)
    srl_r = rt_val.shr(shamt)
    slt_bit = rs_val.slt(opnd_b)
    sltu_bit = ~alu_carry           # no carry out of a-b => a < b unsigned
    slt_r = slt_bit.zext(WORD)
    sltu_r = sltu_bit.zext(WORD)

    # -- hardware multiplier (HI/LO) ------------------------------------------
    # Operand-latched, one-cycle-later result (as in a multicycle MIPS
    # multiplier): the array only toggles when MULT executes, so unused
    # multiplier logic stays prunable for non-multiplying applications.
    is_mult = is_f[isa.F_MULT]
    mpy_a = d.reg(16, "mpy_a", reset=True)
    mpy_a.drive(rs_val[0:16], enable=is_mult)
    mpy_b = d.reg(16, "mpy_b", reset=True)
    mpy_b.drive(rt_val[0:16], enable=is_mult)
    mult_pending = d.reg(1, "mult_pending", reset=True)
    mult_pending.drive(is_mult)
    product = array_multiplier(d, mpy_a.q, mpy_b.q)
    lo.drive(product, enable=mult_pending.q)
    hi.drive(d.const(0, WORD), enable=mult_pending.q)

    # -- memory -----------------------------------------------------------------
    dmem_addr = alu_sum[0:DMEM_ADDR_WIDTH]

    # -- write-back --------------------------------------------------------------
    rtype_result = (
        (alu_sum & (is_f[isa.F_ADDU] | is_f[isa.F_SUBU]).repl(WORD))
        | (and_r & is_f[isa.F_AND].repl(WORD))
        | (or_r & is_f[isa.F_OR].repl(WORD))
        | (xor_r & is_f[isa.F_XOR].repl(WORD))
        | (sll_r & is_f[isa.F_SLL].repl(WORD))
        | (srl_r & is_f[isa.F_SRL].repl(WORD))
        | (slt_r & is_f[isa.F_SLT].repl(WORD))
        | (sltu_r & is_f[isa.F_SLTU].repl(WORD))
        | (lo.q & is_f[isa.F_MFLO].repl(WORD))
        | (hi.q & is_f[isa.F_MFHI].repl(WORD)))
    lui_r = d.const(0, 16).cat(imm16)
    itype_result = (
        (alu_sum & is_o[isa.OP_ADDIU].repl(WORD))
        | (and_r & is_o[isa.OP_ANDI].repl(WORD))
        | (or_r & is_o[isa.OP_ORI].repl(WORD))
        | (xor_r & is_o[isa.OP_XORI].repl(WORD))
        | (lui_r & is_o[isa.OP_LUI].repl(WORD))
        | (dmem_rdata & is_o[isa.OP_LW].repl(WORD)))
    result = rtype_result | itype_result

    rtype_writes = (is_f[isa.F_ADDU] | is_f[isa.F_SUBU] | is_f[isa.F_AND]
                    | is_f[isa.F_OR] | is_f[isa.F_XOR] | is_f[isa.F_SLL]
                    | is_f[isa.F_SRL] | is_f[isa.F_SLT] | is_f[isa.F_SLTU]
                    | is_f[isa.F_MFLO] | is_f[isa.F_MFHI])
    itype_writes = (is_o[isa.OP_ADDIU] | is_o[isa.OP_ANDI]
                    | is_o[isa.OP_ORI] | is_o[isa.OP_XORI]
                    | is_o[isa.OP_LUI] | is_o[isa.OP_LW])
    waddr = mux(is_rtype, rt_idx, rd_idx)
    rf.connect_write(waddr, result, rtype_writes | itype_writes)

    # -- control flow --------------------------------------------------------------
    # The branch unit computes rs - rt; the wide operands are the
    # monitored control-flow signals (the paper's "register that holds
    # the result of subtraction").
    br_lhs = d.name_sig("br_lhs", rs_val)
    br_rhs = d.name_sig("br_rhs", rt_val)
    br_diff, _, _ = alu_adder(d, br_lhs, br_rhs, d.const(1, 1))
    br_eq = br_diff.none()
    is_beq = is_o[isa.OP_BEQ]
    is_bne = is_o[isa.OP_BNE]
    is_branch = is_beq | is_bne
    branch_point = d.name_sig("branch_point", is_branch)
    branch_taken = d.name_sig("branch_taken",
                              (is_beq & br_eq) | (is_bne & ~br_eq))
    pc_plus1, _ = pc.q.add(d.const(1, PC_WIDTH))
    pc_next = mux(branch_taken, pc_plus1, imm16[0:PC_WIDTH])
    pc_next = mux(is_o[isa.OP_J], pc_next, addr26[0:PC_WIDTH])
    pc.drive(pc_next)

    # -- ports -----------------------------------------------------------------------
    d.output("pmem_addr", pc.q)
    d.output("pc", pc.q)
    d.output("dmem_addr", dmem_addr)
    d.output("dmem_wdata", rt_val)
    d.output("dmem_we", is_o[isa.OP_SW])
    d.output("branch_point_o", branch_point)
    d.output("branch_taken_o", branch_taken)

    netlist = d.finalize()
    meta = CoreMeta(
        name="bm32",
        isa="MIPS32",
        word_width=WORD,
        pc_width=PC_WIDTH,
        dmem_addr_width=DMEM_ADDR_WIDTH,
        monitored=[("br_lhs", WORD), ("br_rhs", WORD)],
        branch_point="branch_point",
        branch_force="branch_taken",
        features="32-bit MIPS implementation, with hardware multiplier",
    )
    return netlist, meta
