"""Testbench harness binding a core netlist to the co-analysis engine.

This is the reproduction of the paper's Listing 1 testbench plus the
memory service the real testbench provides: it instantiates the design,
loads the application binary into program memory, initializes
input-dependent data memory to X, services the fetch/load/store ports
each cycle, and exposes the ``$monitor_x`` signal list from the core's
metadata.

Because everything is bound *by net name*, the same class drives both an
original core and its re-synthesized bespoke netlist (whose internal
structure differs but whose port names survive).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..coanalysis.target import SymbolicTarget
from ..isa.asm import Program
from ..logic.value import Logic
from ..logic.vector import LVec
from ..netlist.netlist import Netlist
from ..sim.cycle_sim import CycleSim
from ..sim.memory import XMemory
from .meta import CoreMeta

DMEM_NAME = "dmem"


class CoreTarget(SymbolicTarget):
    """A (core, program) pair ready for symbolic or concrete simulation."""

    def __init__(self, netlist: Netlist, meta: CoreMeta, program: Program,
                 symbolic_ranges: Iterable[Tuple[int, int]] = (),
                 data_init: Optional[Dict[int, int]] = None,
                 gpio_symbolic: bool = False,
                 dmem_words: int = 256):
        super().__init__(netlist)
        if program.word_width != meta.word_width:
            raise ValueError(
                f"program word width {program.word_width} != core word "
                f"width {meta.word_width}")
        self.name = meta.name
        self.meta = meta
        self.program = program
        self.symbolic_ranges = list(symbolic_ranges)
        self.data_init = dict(data_init or {})
        self.gpio_symbolic = gpio_symbolic
        self.dmem_words = dmem_words

        nl = netlist
        self.pc_nets = nl.bus(meta.pc_port, meta.pc_width)
        self._pmem_addr = nl.bus(meta.pmem_addr_port, meta.pc_width)
        self._pmem_data = nl.bus(meta.pmem_data_port, meta.word_width)
        self._dmem_addr = nl.bus(meta.dmem_addr_port, meta.dmem_addr_width)
        self._dmem_rdata = nl.bus(meta.dmem_rdata_port, meta.word_width)
        self._dmem_wdata = nl.bus(meta.dmem_wdata_port, meta.word_width)
        self._dmem_we = nl.net_index(meta.dmem_we_port)
        self.monitored_nets = [nl.net_index(n)
                               for n in meta.monitored_net_names()
                               if nl.has_net(n)]
        self.branch_point_net = nl.net_index(meta.branch_point) \
            if nl.has_net(meta.branch_point) else None
        self.branch_force_net = nl.net_index(meta.branch_force) \
            if nl.has_net(meta.branch_force) else None
        self._gpio_in = nl.bus("gpio_in", meta.word_width) \
            if nl.has_net("gpio_in[0]") else None
        self._halt_pc = program.labels.get("_halt")

        self.rom = XMemory(1 << meta.pc_width, meta.word_width, name="rom")
        self.rom.load_words(0, program.words)

    # -- engine hooks -------------------------------------------------------
    def prepare_sim(self, sim):
        sim.attach_memory(XMemory(self.dmem_words, self.meta.word_width,
                                  name=DMEM_NAME))
        if self._gpio_in is not None:
            sim.set_bus(self._gpio_in,
                        LVec.unknown(self.meta.word_width)
                        if self.gpio_symbolic
                        else LVec.zeros(self.meta.word_width))
        if self.netlist.has_net("irq"):
            sim.set_net(self.netlist.net_index("irq"), Logic.L0)
        return sim

    def apply_symbolic_inputs(self, sim: CycleSim) -> None:
        """Listing 1 step 3: X the input-dependent memory region."""
        dmem = sim.memories[DMEM_NAME]
        for addr, value in self.data_init.items():
            dmem.load_word(addr, value)
        for start, end in self.symbolic_ranges:
            dmem.set_unknown_range(start, end)

    def apply_concrete_inputs(self, sim: CycleSim,
                              inputs: Dict[int, int]) -> None:
        """Validation runs: same layout, fixed known input values."""
        dmem = sim.memories[DMEM_NAME]
        for addr, value in self.data_init.items():
            dmem.load_word(addr, value)
        for addr, value in inputs.items():
            dmem.load_word(addr, value)

    def drive(self, sim: CycleSim) -> None:
        sim.set_bus(self._pmem_data,
                    self.rom.read(sim.get_bus(self._pmem_addr)))
        dmem = sim.memories[DMEM_NAME]
        sim.set_bus(self._dmem_rdata,
                    dmem.read(sim.get_bus(self._dmem_addr)))

    def on_edge(self, sim: CycleSim) -> None:
        we = sim.get_net(self._dmem_we)
        if we is Logic.L0:
            return
        dmem = sim.memories[DMEM_NAME]
        dmem.write(sim.get_bus(self._dmem_addr),
                   sim.get_bus(self._dmem_wdata), enable=we)

    def is_done(self, sim: CycleSim) -> bool:
        if self._halt_pc is None:
            return False
        return self.current_pc(sim) == self._halt_pc

    # -- inspection helpers ----------------------------------------------------
    def read_dmem(self, sim: CycleSim, addr: int) -> LVec:
        return sim.memories[DMEM_NAME].read_concrete(addr)

    def read_dmem_int(self, sim: CycleSim, addr: int) -> int:
        return self.read_dmem(sim, addr).to_int()
