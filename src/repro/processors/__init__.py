"""Processor models: omsp430 (MSP430), bm32 (MIPS32), dr5 (RV32E)."""

from .bm32 import build_bm32
from .dr5 import build_dr5
from .harness import CoreTarget, DMEM_NAME
from .meta import CoreMeta
from .omsp430 import build_omsp430

BUILDERS = {
    "omsp430": build_omsp430,
    "bm32": build_bm32,
    "dr5": build_dr5,
}

__all__ = ["build_omsp430", "build_bm32", "build_dr5", "BUILDERS",
           "CoreTarget", "CoreMeta", "DMEM_NAME"]
