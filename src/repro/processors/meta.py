"""Core metadata: the contract between a core netlist and its harness.

A built core is just a :class:`~repro.netlist.netlist.Netlist`; this
record names the nets the testbench and the co-analysis engine need --
the memory ports, the PC, the ``$monitor_x`` control-flow signal list,
and the 1-bit branch decision net that forked simulations force.
Everything is by *name*, so the same metadata drives both the original
and the re-synthesized bespoke netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class CoreMeta:
    """Names and widths of a core's analysis-relevant signals."""

    name: str
    isa: str
    word_width: int               # datapath / memory word width
    pc_width: int                 # program-memory address width
    dmem_addr_width: int
    pc_port: str = "pc"
    pmem_addr_port: str = "pmem_addr"
    pmem_data_port: str = "pmem_data"
    dmem_addr_port: str = "dmem_addr"
    dmem_rdata_port: str = "dmem_rdata"
    dmem_wdata_port: str = "dmem_wdata"
    dmem_we_port: str = "dmem_we"
    #: control-flow signals for $monitor_x: (net name, width) pairs
    monitored: List[Tuple[str, int]] = field(default_factory=list)
    #: 1-bit "PC-changing instruction resolving now" qualifier
    branch_point: str = "branch_point"
    #: 1-bit decision net that is forced 0/1 to explore each path
    branch_force: str = "branch_taken"
    #: extra named single-bit status nets worth exporting
    extras: Dict[str, str] = field(default_factory=dict)
    #: human-readable feature list (Table 2 column)
    features: str = ""

    def monitored_net_names(self) -> List[str]:
        names: List[str] = []
        for base, width in self.monitored:
            if width == 1:
                names.append(base)
            else:
                names.extend(f"{base}[{i}]" for i in range(width))
        return names
