"""Content-addressed artifact store: one fingerprint layer under
checkpoints, caches, traces, and memoized segment results.

* :mod:`~repro.store.fingerprint` -- canonical stable digests for the
  domain objects (netlist structure, CSM config, application binary,
  run configuration);
* :mod:`~repro.store.content` -- :class:`ContentStore`, sha256-addressed
  blobs plus JSON manifests, written crash-consistently;
* :mod:`~repro.store.segments` -- :class:`SegmentResultCache`, memoized
  segment results keyed on the run fingerprint and entry state.
"""

from .content import ContentStore, StoreCorrupt, StoreError
from .fingerprint import (ENGINE_SEMANTICS_VERSION, RunFingerprint,
                          digest_parts, fingerprint_csm,
                          fingerprint_netlist, fingerprint_workload,
                          run_fingerprint)
from .segments import SegmentResultCache

__all__ = [
    "ContentStore", "StoreError", "StoreCorrupt",
    "SegmentResultCache", "RunFingerprint",
    "ENGINE_SEMANTICS_VERSION", "digest_parts",
    "fingerprint_netlist", "fingerprint_csm", "fingerprint_workload",
    "run_fingerprint",
]
