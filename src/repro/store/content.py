"""Content-addressed artifact store (blobs + JSON manifests).

One on-disk layout underneath every cache and artifact registry::

    <root>/objects/ab/abcdef...       sha256-addressed immutable blobs
    <root>/manifests/<name>.json      JSON documents naming blobs

Blobs are written once under their own digest -- identical content
dedupes for free, and a reader can always detect corruption by
re-hashing.  Manifests are small JSON files (run records, grid entries,
segment indexes) whose values reference blobs by digest; anything a
manifest references is live, everything else is garbage
(:meth:`ContentStore.gc`).

All writes go through the crash-consistency helpers in
:mod:`repro.resilience.artifacts`: a store is never left with a torn
object or a half-written manifest, only with (collectable) orphans.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..resilience.artifacts import (atomic_publish_bytes,
                                    atomic_write_bytes, atomic_write_json)

_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")


class StoreError(Exception):
    """A store operation failed (missing blob, bad digest, ...)."""


class StoreCorrupt(StoreError):
    """Stored content does not match its digest / does not parse."""


def _is_digest(value) -> bool:
    return isinstance(value, str) and bool(_DIGEST_RE.match(value))


#: manifest keys that hold *fingerprint* cross-references -- digest-shaped
#: strings that identify configurations, not stored blobs.  The liveness
#: walk skips them; everything else digest-shaped is a blob reference.
FINGERPRINT_KEYS = frozenset({"fingerprint", "components", "run"})


def _walk_digests(node, out: Set[str]) -> None:
    """Collect every digest-shaped blob reference in a JSON tree.

    Liveness is near schema-free on purpose: a manifest references a
    blob by simply containing its digest anywhere outside the reserved
    :data:`FINGERPRINT_KEYS`, so new manifest kinds never need to teach
    gc about their layout -- they only need to keep fingerprints under
    the reserved keys.
    """
    if isinstance(node, dict):
        for key, value in node.items():
            if key in FINGERPRINT_KEYS:
                continue
            _walk_digests(value, out)
    elif isinstance(node, (list, tuple)):
        for value in node:
            _walk_digests(value, out)
    elif _is_digest(node):
        out.add(node)


class ContentStore:
    """A directory of sha256-addressed blobs and JSON manifests."""

    def __init__(self, root):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.manifests_dir = self.root / "manifests"

    # -- blobs --------------------------------------------------------------
    def object_path(self, digest: str) -> Path:
        if not _is_digest(digest):
            raise StoreError(f"not a sha256 digest: {digest!r}")
        return self.objects_dir / digest[:2] / digest

    def put_bytes(self, blob: bytes) -> str:
        """Store ``blob``; return its digest.  Idempotent and safe
        under concurrent writers.

        A missing object is *published* (O_EXCL-style ``os.link``
        create, :func:`~repro.resilience.artifacts.atomic_publish_bytes`):
        two processes putting the same content race harmlessly -- the
        loser observes the winner's identical file instead of replacing
        it, so a concurrent reader never sees the blob's inode change
        underneath it.  An existing object is only trusted if its
        content still hashes to its name -- re-putting over a bit-rotted
        blob repairs it (rename, last-writer-wins), so evict-and-rerun
        cache healing actually converges.
        """
        digest = hashlib.sha256(blob).hexdigest()
        path = self.object_path(digest)
        try:
            if hashlib.sha256(path.read_bytes()).hexdigest() == digest:
                return digest
            corrupt = True
        except OSError:
            corrupt = False
        if corrupt:
            atomic_write_bytes(path, blob)
        else:
            atomic_publish_bytes(path, blob)
        return digest

    def has(self, digest: str) -> bool:
        return self.object_path(digest).exists()

    def get_bytes(self, digest: str) -> bytes:
        """Read a blob back, verifying its content hash on the way."""
        path = self.object_path(digest)
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise StoreError(f"missing blob {digest[:12]}: {exc}") from exc
        if hashlib.sha256(blob).hexdigest() != digest:
            raise StoreCorrupt(
                f"blob {digest[:12]} does not match its digest "
                f"(on-disk corruption)")
        return blob

    # -- manifests ----------------------------------------------------------
    def manifest_path(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise StoreError(f"bad manifest name {name!r}")
        return self.manifests_dir / f"{name}.json"

    def put_manifest(self, name: str, manifest: Dict) -> None:
        atomic_write_json(self.manifest_path(name), manifest)

    def get_manifest(self, name: str) -> Optional[Dict]:
        """Load a manifest, ``None`` when absent.

        Raises :class:`StoreCorrupt` on unparseable content -- callers
        that can regenerate the entry should treat that as a miss.
        """
        path = self.manifest_path(name)
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (ValueError, OSError) as exc:
            raise StoreCorrupt(
                f"manifest {name!r} does not parse: {exc}") from exc
        if not isinstance(manifest, dict):
            raise StoreCorrupt(f"manifest {name!r} is not a JSON object")
        return manifest

    def delete_manifest(self, name: str) -> bool:
        path = self.manifest_path(name)
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def manifest_names(self) -> List[str]:
        if not self.manifests_dir.is_dir():
            return []
        return sorted(p.stem for p in self.manifests_dir.glob("*.json"))

    def manifests(self) -> Iterator[Tuple[str, Optional[Dict]]]:
        """Yield ``(name, manifest)``; unparseable ones yield ``None``."""
        for name in self.manifest_names():
            try:
                yield name, self.get_manifest(name)
            except StoreCorrupt:
                yield name, None

    # -- maintenance --------------------------------------------------------
    def _object_digests(self) -> List[str]:
        if not self.objects_dir.is_dir():
            return []
        return sorted(p.name for p in self.objects_dir.glob("??/*")
                      if _is_digest(p.name))

    def referenced_digests(self) -> Set[str]:
        live: Set[str] = set()
        for _, manifest in self.manifests():
            if manifest is not None:
                _walk_digests(manifest, live)
        return live

    def gc(self) -> Dict[str, int]:
        """Delete blobs no manifest references; return what happened."""
        live = self.referenced_digests()
        kept = removed = freed = 0
        for digest in self._object_digests():
            path = self.object_path(digest)
            if digest in live:
                kept += 1
                continue
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        return {"kept": kept, "removed": removed, "freed_bytes": freed}

    def _fingerprint_digests(self) -> Set[str]:
        """Digest-shaped strings embedded in manifest *names*.

        ``run-<fp>`` / ``segments-<fp>`` / ``grid-<fp>`` manifests carry
        their run fingerprint in the name; that fingerprint then appears
        in manifest bodies as a cross-reference, not as a blob address,
        so gc keeps it out of harm's way and verify must not demand a
        blob for it.
        """
        out: Set[str] = set()
        for name in self.manifest_names():
            for match in re.finditer(r"[0-9a-f]{64}", name):
                out.add(match.group(0))
        return out

    def verify(self) -> Dict[str, object]:
        """Re-hash every blob and re-parse every manifest."""
        corrupt: List[str] = []
        objects = 0
        for digest in self._object_digests():
            objects += 1
            try:
                self.get_bytes(digest)
            except StoreError:
                corrupt.append(digest)
        unreadable: List[str] = []
        missing: List[str] = []
        manifests = 0
        fingerprints = self._fingerprint_digests()
        for name, manifest in self.manifests():
            manifests += 1
            if manifest is None:
                unreadable.append(name)
                continue
            refs: Set[str] = set()
            _walk_digests(manifest, refs)
            for digest in sorted(refs - fingerprints):
                if not self.has(digest):
                    missing.append(f"{name}:{digest[:12]}")
        return {"objects": objects, "corrupt_objects": corrupt,
                "manifests": manifests, "unreadable_manifests": unreadable,
                "missing_blobs": missing,
                "ok": not (corrupt or unreadable or missing)}

    def stats(self) -> Dict[str, object]:
        digests = self._object_digests()
        total = 0
        for digest in digests:
            try:
                total += self.object_path(digest).stat().st_size
            except OSError:
                pass
        kinds: Dict[str, int] = {}
        for _, manifest in self.manifests():
            kind = (manifest or {}).get("kind", "unreadable")
            kinds[str(kind)] = kinds.get(str(kind), 0) + 1
        return {"root": str(self.root), "objects": len(digests),
                "object_bytes": total,
                "manifests": sum(kinds.values()),
                "manifest_kinds": kinds}
