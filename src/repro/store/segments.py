"""Memoized segment results: replay settled segments instead of
re-simulating them.

A segment's outcome is a pure function of (run configuration, entry
state, forced branch decision): the engines are deterministic, so a
re-run with an identical :class:`~repro.store.fingerprint.RunFingerprint`
will pop the same pending paths and simulate the same segments.
:class:`SegmentResultCache` keys each settled segment on the run digest
plus the entry-state content and serves the recorded
:class:`~repro.coanalysis.kernel.SegmentResult` -- outcome, end PC,
cycle count, end state, and the per-segment activity planes the kernel
folds into the toggle profile -- turning the second submission of the
same (binary, netlist, CSM) into near-free cache hits.

Records are content-addressed blobs in a :class:`ContentStore`; the
key->digest index is one JSON manifest per run fingerprint, flushed at
checkpoint boundaries and at run end.  A crash between flushes leaves
orphan blobs (reclaimed by ``repro store gc``), never a torn index, and
a corrupt record is treated as a miss and dropped -- the cache
self-heals by re-simulating.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from typing import Dict, Optional

from .content import ContentStore, StoreError

#: segment outcomes worth memoizing.  ``quarantined`` is excluded: no
#: simulation happened, and the quarantine registry owns that verdict.
_CACHEABLE = ("done", "halt", "budget")


class SegmentResultCache:
    """Digest-keyed memo of settled segments for one run fingerprint."""

    def __init__(self, store: ContentStore, run_digest: str):
        self._store = store
        self.run_digest = run_digest
        self.manifest_name = f"segments-{run_digest}"
        self.hits = 0
        self.misses = 0
        try:
            manifest = store.get_manifest(self.manifest_name)
        except StoreError:
            manifest = None     # corrupt index: start fresh, re-simulate
        segments = (manifest or {}).get("segments", {})
        self._index: Dict[str, str] = dict(segments) \
            if isinstance(segments, dict) else {}
        self._dirty = False

    def __len__(self) -> int:
        return len(self._index)

    # -- keying -------------------------------------------------------------
    def key(self, state, forced_decision: Optional[int]) -> str:
        """Content key of one pending path under this run fingerprint."""
        h = hashlib.sha256()
        h.update(self.run_digest.encode("ascii"))
        h.update(struct.pack("<qq", state.cycle,
                             -1 if state.pc is None else state.pc))
        h.update(b"f" if forced_decision is None
                 else str(forced_decision).encode("ascii"))
        h.update(state.fingerprint())
        return h.hexdigest()

    # -- lookup / store -----------------------------------------------------
    def lookup(self, key: str):
        """Return the memoized SegmentResult for ``key``, or ``None``.

        Any decode or integrity failure counts as a miss and evicts the
        entry, so one corrupt blob costs one re-simulation, not a crash.
        """
        from ..coanalysis.kernel import SegmentResult
        from ..sim.state import SimState
        digest = self._index.get(key)
        if digest is None:
            self.misses += 1
            return None
        try:
            record = pickle.loads(self._store.get_bytes(digest))
            outcome, end_pc, cycles, state_bytes, exercised, activity = \
                record
            if outcome not in _CACHEABLE or activity is None:
                raise ValueError(f"unreplayable record ({outcome})")
            end_state = SimState.from_bytes(state_bytes) \
                if state_bytes is not None else None
        except Exception:
            del self._index[key]
            self._dirty = True
            self.misses += 1
            return None
        self.hits += 1
        return SegmentResult(outcome, end_pc, cycles, end_state,
                             exercised, activity)

    def store(self, key: str, segment) -> bool:
        """Memoize one settled segment; returns True when recorded."""
        if segment.outcome not in _CACHEABLE or segment.activity is None:
            return False
        record = (segment.outcome, segment.end_pc, segment.cycles,
                  segment.end_state.to_bytes()
                  if segment.end_state is not None else None,
                  segment.exercised, segment.activity)
        digest = self.store_blob(pickle.dumps(
            record, protocol=pickle.HIGHEST_PROTOCOL))
        self._index[key] = digest
        self._dirty = True
        return True

    def store_blob(self, blob: bytes) -> str:
        return self._store.put_bytes(blob)

    # -- persistence --------------------------------------------------------
    def flush(self) -> None:
        """Write the key->blob index as one atomic manifest."""
        if not self._dirty:
            return
        self._store.put_manifest(self.manifest_name, {
            "kind": "segments",
            "run": self.run_digest,
            "segments": dict(self._index),
        })
        self._dirty = False
