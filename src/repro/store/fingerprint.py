"""Canonical content fingerprints for the core domain objects.

Every artifact-producing layer used to invent its own cache keying: the
reporting grid pickled results under name-string paths guarded by a
hand-bumped version constant, quarantine hashed ``(pc, state)`` blobs,
compile caching keyed on object identity.  This module gives the four
domain objects one stable digest each, so caches built on them
*self-invalidate* the moment the underlying content actually changes --
no constant to remember to bump:

* :func:`fingerprint_netlist` -- the circuit's structure (named nets,
  cell kinds, connections), independent of construction order and of
  instance names;
* :func:`fingerprint_csm` -- the Conservative State Manager
  configuration (merge strategy + parameters + constraint set);
* :func:`fingerprint_workload` -- the application binary as assembled
  (program words, data image, symbolic input ranges);
* :func:`run_fingerprint` -- the whole run configuration, combining the
  three above with the engine kind, frontier strategy, cycle budgets and
  :data:`ENGINE_SEMANTICS_VERSION`.

Digests are hex sha256 over length-prefixed canonical encodings, so no
concatenation ambiguity exists and equal digests mean equal content.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, Optional

#: bump when the *meaning* of a simulated segment changes (halting
#: policy, activity recording, forced-branch semantics, state layout):
#: memoized segment results and cached runs from older semantics must
#: not be replayed into a run with newer ones.  This is the one version
#: constant left, and it guards semantics -- content changes (netlist,
#: CSM config, binary) invalidate through their own digests.
#:
#: v2: the SimBackend unification (one shared segment loop for serial /
#: event / pool) and streaming lane compaction in the batch engine; the
#: batch engine's lane capacity became a run parameter (``lanes``), now
#: part of the fingerprint.
ENGINE_SEMANTICS_VERSION = 2


def digest_parts(*parts) -> str:
    """sha256 over length-prefixed parts (no concatenation ambiguity)."""
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, str):
            part = part.encode("utf-8")
        h.update(struct.pack("<Q", len(part)))
        h.update(part)
    return h.hexdigest()


def fingerprint_netlist(netlist) -> str:
    """Structural digest of a netlist.

    Canonicalizes to sorted, name-based lines (see
    :meth:`~repro.netlist.netlist.Netlist.structural_lines`), so the
    digest survives re-parsing, Verilog round-trips, and construction in
    a different order -- and changes on any cell or connection edit.
    """
    return digest_parts("netlist/v1", "\n".join(netlist.structural_lines()))


def fingerprint_csm(strategy=None, constraints=None) -> str:
    """Digest of a CSM configuration: merge strategy + constraint set.

    Strategy parameters are taken from the instance's primitive
    attributes (e.g. ``Clustered.k``), so ``clustered2`` and
    ``clustered4`` fingerprint differently without the strategy class
    having to know about caching.
    """
    parts = ["csm/v1"]
    if strategy is None:
        parts.append("strategy=none")
    else:
        parts.append(f"strategy={strategy.name}")
        for key in sorted(vars(strategy)):
            value = vars(strategy)[key]
            if isinstance(value, (bool, int, float, str)):
                parts.append(f"param:{key}={value!r}")
    if constraints is None:
        parts.append("constraints=none")
    else:
        parts.extend(constraints.canonical_lines())
    return digest_parts(*parts)


def fingerprint_workload(design: str, program, data_init=None,
                         symbolic_ranges=None) -> str:
    """Digest of an application binary as the core will execute it.

    Covers the assembled program words (not the assembly text -- a
    comment edit must not invalidate), the initial data image, and the
    symbolic input ranges that define what the co-analysis treats as
    unknown.
    """
    parts = ["workload/v1", f"design={design}",
             f"word_width={program.word_width}",
             ",".join(str(w) for w in program.words)]
    for addr in sorted(data_init or {}):
        parts.append(f"data:{addr}={data_init[addr]}")
    for start, end in sorted(symbolic_ranges or []):
        parts.append(f"symbolic:{start}:{end}")
    return digest_parts(*parts)


@dataclass(frozen=True)
class RunFingerprint:
    """A run-configuration digest plus its per-component breakdown.

    ``components`` goes into run manifests verbatim, so ``repro store
    ls`` can show *which* ingredient changed between two runs that
    failed to share a cache.
    """

    digest: str
    components: Dict[str, object]

    def __str__(self) -> str:
        return self.digest


def run_fingerprint(*, netlist, strategy=None, constraints=None,
                    design: str = "?", application: str = "?",
                    program=None, data_init=None, symbolic_ranges=None,
                    engine: str = "serial", frontier: str = "dfs",
                    max_cycles_per_path: int = 20000,
                    max_total_cycles: Optional[int] = 2_000_000,
                    lanes: Optional[int] = None,
                    ) -> RunFingerprint:
    """Fingerprint one full co-analysis configuration.

    Two runs with equal digests simulate the same binary on the same
    netlist under the same CSM, engine, frontier and budgets -- their
    segment results are interchangeable and their
    :class:`~repro.coanalysis.results.CoAnalysisResult` is reusable.
    """
    from ..sim.state import STATE_FORMAT_VERSION
    components: Dict[str, object] = {
        "design": design,
        "application": application,
        "netlist": fingerprint_netlist(netlist),
        "csm": fingerprint_csm(strategy, constraints),
        "workload": (fingerprint_workload(design, program, data_init,
                                          symbolic_ranges)
                     if program is not None else "none"),
        "engine": engine,
        # lane-plane width for the batch engine (None elsewhere): a
        # 64-lane warm cache must miss cleanly at 128 lanes
        "lanes": lanes,
        "frontier": frontier,
        "max_cycles_per_path": max_cycles_per_path,
        "max_total_cycles": max_total_cycles,
        "semantics": ENGINE_SEMANTICS_VERSION,
        "state_format": STATE_FORMAT_VERSION,
    }
    digest = digest_parts(
        "run/v1", *(f"{key}={components[key]}"
                    for key in sorted(components)))
    return RunFingerprint(digest, components)
